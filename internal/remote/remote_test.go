package remote

import (
	"strings"
	"sync"
	"testing"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/coretest"
	"unbundle/internal/keyspace"
	"unbundle/internal/mvcc"
)

// TestConformanceOverTCP runs the full Watchable conformance suite across a
// real TCP connection: a remote watch system must be indistinguishable from
// a local one.
func TestConformanceOverTCP(t *testing.T) {
	coretest.Run(t, "remote-over-tcp", func(cfg core.HubConfig) coretest.Env {
		ws := mvcc.NewWatchableStore(cfg)
		srv, err := Serve("127.0.0.1:0", ws, ws)
		if err != nil {
			t.Fatal(err)
		}
		client, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return coretest.Env{
			Watch: client,
			Put:   func(k keyspace.Key, v []byte) core.Version { return ws.Put(k, v) },
			KeyOf: func(ev core.ChangeEvent) keyspace.Key { return ev.Key },
			Close: func() {
				client.Close()
				srv.Close()
				ws.Close()
			},
		}
	})
}

func newPair(t *testing.T) (*mvcc.WatchableStore, *Server, *Client) {
	t.Helper()
	ws := mvcc.NewWatchableStore(core.HubConfig{})
	srv, err := Serve("127.0.0.1:0", ws, ws)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		ws.Close()
	})
	return ws, srv, client
}

func TestRemoteSnapshotRange(t *testing.T) {
	ws, _, client := newPair(t)
	ws.Put("a", []byte("1"))
	ws.Put("b", []byte("2"))
	entries, at, err := client.SnapshotRange(keyspace.Full())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || at != ws.CurrentVersion() {
		t.Fatalf("snapshot = %v @%v", entries, at)
	}
	// Clipped snapshot.
	entries, _, err = client.SnapshotRange(keyspace.Point("a"))
	if err != nil || len(entries) != 1 || entries[0].Key != "a" {
		t.Fatalf("point snapshot = %v err=%v", entries, err)
	}
}

func TestRemoteResyncWatcherEndToEnd(t *testing.T) {
	// The full §4.4 loop against a remote watch system: the client is both
	// the Watchable and the Snapshotter for a ResyncWatcher.
	ws, _, client := newPair(t)
	ws.Put("k", []byte("v1"))

	var mu sync.Mutex
	state := map[keyspace.Key]string{}
	rw := core.NewResyncWatcher(client, client, keyspace.Full(), &mapSink{mu: &mu, state: state})
	if err := rw.Start(); err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()

	mu.Lock()
	if state["k"] != "v1" {
		mu.Unlock()
		t.Fatal("initial remote snapshot missing")
	}
	mu.Unlock()
	ws.Put("k", []byte("v2"))
	waitUntil(t, "remote event applied", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return state["k"] == "v2"
	})
}

func TestRemoteConnectionLossResyncsWatches(t *testing.T) {
	ws, srv, client := newPair(t)
	var mu sync.Mutex
	var resyncs []core.ResyncEvent
	cancel, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Resync: func(r core.ResyncEvent) {
			mu.Lock()
			resyncs = append(resyncs, r)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	ws.Put("k", []byte("1"))

	srv.Close() // the server dies
	waitUntil(t, "loss resync", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(resyncs) == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(resyncs[0].Reason, "connection lost") {
		t.Fatalf("resync reason = %q", resyncs[0].Reason)
	}
}

func TestRemoteWatchRejectionBecomesResync(t *testing.T) {
	// Server-side watch rejection (e.g. pre-eviction version) arrives as a
	// resync, the uniform recovery signal.
	ws := mvcc.NewWatchableStore(core.HubConfig{Retention: 4})
	defer ws.Close()
	for i := 0; i < 50; i++ {
		ws.Put("k", []byte{byte(i)})
	}
	srv, err := Serve("127.0.0.1:0", ws, ws)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var mu sync.Mutex
	var resyncs []core.ResyncEvent
	cancel, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Resync: func(r core.ResyncEvent) { mu.Lock(); resyncs = append(resyncs, r); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	waitUntil(t, "resync", func() bool { mu.Lock(); defer mu.Unlock(); return len(resyncs) == 1 })
}

func TestRemoteMultipleClients(t *testing.T) {
	ws, srv, c1 := newPair(t)
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	count := func(c *Client) func() int {
		var mu sync.Mutex
		n := 0
		cancel, err := c.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
			Event: func(core.ChangeEvent) { mu.Lock(); n++; mu.Unlock() },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cancel)
		return func() int { mu.Lock(); defer mu.Unlock(); return n }
	}
	n1 := count(c1)
	n2 := count(c2)
	for i := 0; i < 20; i++ {
		ws.Put(keyspace.NumericKey(i), []byte("v"))
	}
	waitUntil(t, "both clients", func() bool { return n1() == 20 && n2() == 20 })
}

func TestClientClosedErrors(t *testing.T) {
	_, _, client := newPair(t)
	client.Close()
	client.Close() // idempotent
	if _, err := client.Watch(keyspace.Full(), 0, core.Funcs{}); err != ErrClientClosed {
		t.Fatalf("watch after close = %v", err)
	}
	if _, _, err := client.SnapshotRange(keyspace.Full()); err != ErrClientClosed {
		t.Fatalf("snapshot after close = %v", err)
	}
	if _, err := client.Watch(keyspace.Range{}, 0, core.Funcs{}); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := client.Watch(keyspace.Full(), 0, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
}

// mapSink is a trivial SyncedConsumer for the end-to-end test.
type mapSink struct {
	mu    *sync.Mutex
	state map[keyspace.Key]string
}

func (m *mapSink) ResetSnapshot(r keyspace.Range, entries []core.Entry, at core.Version) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := range m.state {
		if r.Contains(k) {
			delete(m.state, k)
		}
	}
	for _, e := range entries {
		m.state[e.Key] = string(e.Value)
	}
}

func (m *mapSink) ApplyChange(ev core.ChangeEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ev.Mut.Op == core.OpDelete {
		delete(m.state, ev.Key)
		return
	}
	m.state[ev.Key] = string(ev.Mut.Value)
}

func (m *mapSink) AdvanceFrontier(core.ProgressEvent) {}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func BenchmarkRemoteEventThroughput(b *testing.B) {
	ws := mvcc.NewWatchableStore(core.HubConfig{Retention: 1 << 16, WatcherBuffer: 1 << 20})
	defer ws.Close()
	srv, err := Serve("127.0.0.1:0", ws, ws)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	// The producer keeps a bounded number of events in flight; otherwise the
	// server's bounded outbound queue (correctly) lags the client out with a
	// resync, and there would be no steady-state throughput to measure.
	const outstanding = 1024
	sem := make(chan struct{}, outstanding)
	cancel, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Event: func(core.ChangeEvent) { <-sem },
		Resync: func(r core.ResyncEvent) {
			panic("remote bench: unexpected resync: " + r.Reason)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cancel()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sem <- struct{}{}
		ws.Put("key", []byte("0123456789abcdef"))
	}
	// Drain: wall time includes full wire delivery of b.N events.
	for i := 0; i < outstanding; i++ {
		sem <- struct{}{}
	}
	b.StopTimer()
}

func BenchmarkRemoteSnapshot(b *testing.B) {
	ws := mvcc.NewWatchableStore(core.HubConfig{})
	defer ws.Close()
	for i := 0; i < 1000; i++ {
		ws.Put(keyspace.NumericKey(i), []byte("0123456789abcdef"))
	}
	srv, err := Serve("127.0.0.1:0", ws, ws)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := client.SnapshotRange(keyspace.NumericRange(0, 100)); err != nil {
			b.Fatal(err)
		}
	}
}
