package remote

import (
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/coretest"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
	"unbundle/internal/mvcc"
	"unbundle/internal/trace"
)

// fastReconnect is the retry policy chaos tests use: effectively unlimited
// attempts, millisecond backoff, fixed jitter seed.
func fastReconnect() ReconnectPolicy {
	return ReconnectPolicy{
		Enabled:     true,
		MaxAttempts: -1,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		Seed:        1,
	}
}

// TestChaosHeartbeatDetectsHalfOpen blackholes a live connection — reads
// block, writes vanish, exactly the NAT-timeout / partition shape that used
// to hang a watcher forever — and asserts both ends detect it via
// heartbeat-scaled deadlines: the client reconnects and resumes without a
// resync or a duplicate, and the server reaps the dead connection.
func TestChaosHeartbeatDetectsHalfOpen(t *testing.T) {
	reg := metrics.NewRegistry()
	hub := core.NewHub(core.HubConfig{Retention: 1 << 16, WatcherBuffer: 1 << 16, Metrics: reg})
	defer hub.Close()
	srv, err := ServeWith("127.0.0.1:0", hub, nopSnap{}, ServerConfig{
		Metrics:           reg,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctrl := NewChaosController(ChaosConfig{})
	client, err := DialWith(srv.Addr(), ClientConfig{
		Metrics:           reg,
		HeartbeatInterval: 20 * time.Millisecond,
		Reconnect:         fastReconnect(),
		Dialer:            ctrl.Dialer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var mu sync.Mutex
	seen := make(map[core.Version]bool)
	var dups atomic.Int64
	var resyncs atomic.Int64
	cancel, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Event: func(ev core.ChangeEvent) {
			mu.Lock()
			if seen[ev.Version] {
				dups.Add(1)
			}
			seen[ev.Version] = true
			mu.Unlock()
		},
		Resync: func(core.ResyncEvent) { resyncs.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	delivered := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(seen)
	}
	produce := func(from, to int) {
		for i := from; i <= to; i++ {
			if err := hub.Append(core.ChangeEvent{
				Key:     keyspace.NumericKey(i % 64),
				Mut:     core.Mutation{Op: core.OpPut, Value: []byte("v")},
				Version: core.Version(i),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	produce(1, 100)
	waitUntil(t, "first 100 events", func() bool { return delivered() == 100 })

	// Half-open the connection: neither end gets a FIN or RST, only silence.
	ctrl.BlackholeLive()
	produce(101, 200) // lands while partitioned; resume must recover it
	waitUntil(t, "client reconnect", func() bool { return ctrl.Dials() >= 2 })
	produce(201, 300)
	waitUntil(t, "all 300 events", func() bool { return delivered() == 300 })

	if n := dups.Load(); n != 0 {
		t.Fatalf("%d duplicate events across reconnect", n)
	}
	if n := resyncs.Load(); n != 0 {
		t.Fatalf("%d resyncs; resume should have covered the gap silently", n)
	}
	waitUntil(t, "server reaps dead conn", func() bool { return len(srv.Conns()) == 1 })

	snap := reg.Snapshot()
	if snap.Counters["remote_client_reconnects_total"] < 1 {
		t.Fatal("no reconnect counted")
	}
	if snap.Counters["remote_client_resumed_watches_total"] < 1 {
		t.Fatal("no resumed watch counted")
	}
	if snap.Counters["remote_client_heartbeats_total"] == 0 {
		t.Fatal("client sent no heartbeats")
	}
	if snap.Counters["remote_server_heartbeats_total"] == 0 {
		t.Fatal("server sent no heartbeats")
	}
}

// TestChaosRepeatedSeverConvergence is the acceptance-criteria run: ≥3
// forced partitions under load, after which every watcher has converged with
// no duplicates, no gaps, per-key order intact — and the client's metrics
// and trace stages are continuous across the reconnects (one logical watch,
// every trace complete through all six stages).
func TestChaosRepeatedSeverConvergence(t *testing.T) {
	reg := metrics.NewRegistry()
	tracer := trace.New(trace.Config{
		SampleEvery: 1,
		Metrics:     reg,
		FinalStage:  trace.StageRemoteDeliver,
	})
	hub := core.NewHub(core.HubConfig{Retention: 1 << 16, WatcherBuffer: 1 << 16, Metrics: reg, Tracer: tracer})
	defer hub.Close()
	srv, err := ServeWith("127.0.0.1:0", hub, nopSnap{}, ServerConfig{
		Metrics:           reg,
		Tracer:            tracer,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctrl := NewChaosController(ChaosConfig{})
	client, err := DialWith(srv.Addr(), ClientConfig{
		Metrics:           reg,
		Tracer:            tracer,
		HeartbeatInterval: 20 * time.Millisecond,
		Reconnect:         fastReconnect(),
		Dialer:            ctrl.Dialer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var mu sync.Mutex
	lastByKey := make(map[keyspace.Key]core.Version)
	var total atomic.Int64
	var orderViolations, dups, resyncs atomic.Int64
	cancel, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Event: func(ev core.ChangeEvent) {
			mu.Lock()
			switch last := lastByKey[ev.Key]; {
			case ev.Version == last:
				dups.Add(1)
			case ev.Version < last:
				orderViolations.Add(1)
			default:
				lastByKey[ev.Key] = ev.Version
				total.Add(1)
			}
			mu.Unlock()
		},
		Resync: func(core.ResyncEvent) { resyncs.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	const rounds, perRound = 4, 50
	v := 0
	for round := 1; round <= rounds; round++ {
		for i := 0; i < perRound; i++ {
			v++
			key := keyspace.NumericKey(v % 16)
			id := tracer.Begin(key, uint64(v))
			if err := hub.Append(core.ChangeEvent{
				Key:     key,
				Mut:     core.Mutation{Op: core.OpPut, Value: []byte("chaos")},
				Version: core.Version(v),
				Trace:   id,
			}); err != nil {
				t.Fatal(err)
			}
		}
		want := int64(v)
		waitUntil(t, "round delivery", func() bool { return total.Load() == want })
		if round < rounds {
			dial := ctrl.Dials()
			ctrl.SeverAll()
			waitUntil(t, "reconnect after sever", func() bool { return ctrl.Dials() > dial })
		}
	}

	if n := dups.Load(); n != 0 {
		t.Fatalf("%d duplicates", n)
	}
	if n := orderViolations.Load(); n != 0 {
		t.Fatalf("%d per-key order violations", n)
	}
	if n := resyncs.Load(); n != 0 {
		t.Fatalf("%d resyncs; retention covered every gap", n)
	}

	// Metrics continuity: one logical watch across all reconnects, each
	// reconnect counted, no terminal loss.
	snap := reg.Snapshot()
	if got := snap.Counters["remote_client_watches_total"]; got != 1 {
		t.Fatalf("remote_client_watches_total = %d, want 1 (stable watch ID)", got)
	}
	if got := snap.Counters["remote_client_reconnects_total"]; got < int64(rounds-1) {
		t.Fatalf("remote_client_reconnects_total = %d, want >= %d", got, rounds-1)
	}
	if got := snap.Counters["remote_client_resumed_watches_total"]; got < int64(rounds-1) {
		t.Fatalf("remote_client_resumed_watches_total = %d, want >= %d", got, rounds-1)
	}
	if got := snap.Counters["remote_client_conn_lost_total"]; got < int64(rounds-1) {
		t.Fatalf("remote_client_conn_lost_total = %d, want >= %d", got, rounds-1)
	}

	// Trace continuity: every event's trace completed through the whole
	// pipeline, reconnects notwithstanding. Enqueue and replay are
	// alternative entries into delivery — an event delivered live before a
	// sever and re-streamed from retention after the resume carries both
	// stamps, one appended mid-partition carries only replay, and one that
	// never crossed a reconnect carries only enqueue.
	waitUntil(t, "traces completed", func() bool { return tracer.CompletedCount() >= int64(v) })
	for _, tr := range tracer.Completed() {
		if !tr.Complete() {
			t.Fatalf("incomplete trace across reconnects: %+v", tr)
		}
		for s := 1; s < trace.NumStages; s++ {
			if tr.Stages[s] != 0 {
				continue
			}
			if st := trace.Stage(s); (st == trace.StageEnqueue && tr.Stages[trace.StageReplay] != 0) ||
				(st == trace.StageReplay && tr.Stages[trace.StageEnqueue] != 0) {
				continue
			}
			t.Fatalf("trace %d missing stage %v", tr.ID, trace.Stage(s))
		}
	}
}

// TestServerShutdownDrainsGracefully shuts the server down mid-session and
// asserts the client can tell it apart from a network failure: delivered
// events stay delivered, the watch ends in a terminal "draining" resync, and
// a reconnect-enabled client does not burn its budget redialing.
func TestServerShutdownDrainsGracefully(t *testing.T) {
	reg := metrics.NewRegistry()
	hub := core.NewHub(core.HubConfig{Metrics: reg})
	defer hub.Close()
	srv, err := ServeWith("127.0.0.1:0", hub, nopSnap{}, ServerConfig{
		Metrics:           reg,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	client, err := DialWith(srv.Addr(), ClientConfig{
		Metrics:           reg,
		HeartbeatInterval: 20 * time.Millisecond,
		Reconnect:         fastReconnect(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var delivered atomic.Int64
	var gotResync atomic.Value // core.ResyncEvent
	cancel, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Event:  func(core.ChangeEvent) { delivered.Add(1) },
		Resync: func(r core.ResyncEvent) { gotResync.Store(r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	for i := 1; i <= 20; i++ {
		if err := hub.Append(core.ChangeEvent{
			Key:     keyspace.NumericKey(i),
			Mut:     core.Mutation{Op: core.OpPut, Value: []byte("v")},
			Version: core.Version(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "pre-drain delivery", func() bool { return delivered.Load() == 20 })

	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	waitUntil(t, "terminal drain resync", func() bool { return gotResync.Load() != nil })
	r := gotResync.Load().(core.ResyncEvent)
	if r.Reason != "remote: server draining" {
		t.Fatalf("resync reason %q, want draining marker", r.Reason)
	}
	if got := delivered.Load(); got != 20 {
		t.Fatalf("delivered %d events, want 20 (drain must not drop delivered state)", got)
	}

	// The client learned this was a drain: it must refuse new work with the
	// draining error rather than dial into the void.
	waitUntil(t, "client terminal", func() bool {
		_, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{})
		return errors.Is(err, ErrServerDraining)
	})
	snap := reg.Snapshot()
	if got := snap.Counters["remote_server_drained_watches_total"]; got != 1 {
		t.Fatalf("remote_server_drained_watches_total = %d, want 1", got)
	}
	if got := snap.Counters["remote_client_reconnects_total"]; got != 0 {
		t.Fatalf("client reconnected %d times during a deliberate drain", got)
	}
}

// TestClientCloseUnderLoad closes the client while the server is streaming
// at full tilt: no goroutine may leak, no data race may fire (run under
// -race), the watch must end in exactly one terminal resync, and subsequent
// calls must fail with ErrClientClosed.
func TestClientCloseUnderLoad(t *testing.T) {
	checkLeaks := coretest.GoroutineLeakGuard(t, 3)
	reg := metrics.NewRegistry()
	hub := core.NewHub(core.HubConfig{Retention: 1 << 16, WatcherBuffer: 1 << 16, Metrics: reg})
	srv, err := ServeWith("127.0.0.1:0", hub, nopSnap{}, ServerConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	client, err := DialWith(srv.Addr(), ClientConfig{Metrics: reg, Reconnect: fastReconnect()})
	if err != nil {
		t.Fatal(err)
	}

	var delivered atomic.Int64
	var resyncs atomic.Int64
	if _, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Event:  func(core.ChangeEvent) { delivered.Add(1) },
		Resync: func(core.ResyncEvent) { resyncs.Add(1) },
	}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var producerDone sync.WaitGroup
	producerDone.Add(1)
	go func() {
		defer producerDone.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = hub.Append(core.ChangeEvent{
				Key:     keyspace.NumericKey(i % 32),
				Mut:     core.Mutation{Op: core.OpPut, Value: []byte("load")},
				Version: core.Version(i),
			})
			// Keep a bounded backlog in flight so the hub never lags the
			// watcher out; after Close the count freezes and we park here
			// until the test releases us.
			for delivered.Load()+4096 < int64(i) {
				select {
				case <-stop:
					return
				default:
					time.Sleep(time.Millisecond)
				}
			}
		}
	}()

	waitUntil(t, "stream flowing", func() bool { return delivered.Load() > 100 })
	client.Close() // mid-decode: the read loop is busy delivering right now

	waitUntil(t, "terminal resync", func() bool { return resyncs.Load() == 1 })
	if _, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Watch after Close = %v, want ErrClientClosed", err)
	}
	if _, _, err := client.SnapshotRange(keyspace.Full()); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("SnapshotRange after Close = %v, want ErrClientClosed", err)
	}

	close(stop)
	producerDone.Wait()
	srv.Close()
	hub.Close()
	checkLeaks()
}

// TestClientCloseMidReconnect kills the server so the client enters its
// redial loop, then closes the client mid-dial: the loop must exit promptly,
// deliver the terminal resync, and leak nothing.
func TestClientCloseMidReconnect(t *testing.T) {
	checkLeaks := coretest.GoroutineLeakGuard(t, 3)
	reg := metrics.NewRegistry()
	hub := core.NewHub(core.HubConfig{Metrics: reg})
	srv, err := ServeWith("127.0.0.1:0", hub, nopSnap{}, ServerConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewChaosController(ChaosConfig{})
	client, err := DialWith(srv.Addr(), ClientConfig{
		Metrics:   reg,
		Reconnect: fastReconnect(),
		Dialer:    ctrl.Dialer(),
	})
	if err != nil {
		t.Fatal(err)
	}

	var resyncs atomic.Int64
	if _, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Resync: func(core.ResyncEvent) { resyncs.Add(1) },
	}); err != nil {
		t.Fatal(err)
	}

	ctrl.FailNextDials(1 << 30) // every redial refused: the loop spins on backoff
	srv.Close()
	waitUntil(t, "reconnect loop spinning", func() bool {
		return reg.Snapshot().Counters["remote_client_reconnect_failures_total"] >= 2
	})
	client.Close()

	waitUntil(t, "terminal resync", func() bool { return resyncs.Load() == 1 })
	if _, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Watch after Close = %v, want ErrClientClosed", err)
	}
	hub.Close()
	checkLeaks()
}

// TestReconnectBudgetExhausted takes the server away permanently and asserts
// the retry budget is honored: the client fails terminally with
// ErrReconnectBudget after exactly MaxAttempts refused dials, and the watch
// gets a resync saying so — bounded recovery, not an infinite dial storm.
func TestReconnectBudgetExhausted(t *testing.T) {
	reg := metrics.NewRegistry()
	hub := core.NewHub(core.HubConfig{Metrics: reg})
	defer hub.Close()
	srv, err := ServeWith("127.0.0.1:0", hub, nopSnap{}, ServerConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewChaosController(ChaosConfig{})
	client, err := DialWith(srv.Addr(), ClientConfig{
		Metrics: reg,
		Reconnect: ReconnectPolicy{
			Enabled:     true,
			MaxAttempts: 3,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  4 * time.Millisecond,
			Seed:        7,
		},
		Dialer: ctrl.Dialer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resyncCh := make(chan core.ResyncEvent, 1)
	if _, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Resync: func(r core.ResyncEvent) { resyncCh <- r },
	}); err != nil {
		t.Fatal(err)
	}

	ctrl.FailNextDials(1 << 30)
	srv.Close()

	var r core.ResyncEvent
	select {
	case r = <-resyncCh:
	case <-time.After(5 * time.Second):
		t.Fatal("no terminal resync after budget exhaustion")
	}
	if want := "reconnect gave up after 3 attempts"; !contains(r.Reason, want) {
		t.Fatalf("resync reason %q, want it to contain %q", r.Reason, want)
	}
	_, err = client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{})
	if !errors.Is(err, ErrReconnectBudget) {
		t.Fatalf("Watch after budget exhaustion = %v, want ErrReconnectBudget", err)
	}
	if got := reg.Snapshot().Counters["remote_client_reconnect_failures_total"]; got != 3 {
		t.Fatalf("remote_client_reconnect_failures_total = %d, want 3", got)
	}
}

// gobGarbage is a frame no gob decoder accepts: the uvarint length prefix
// (0xf8 = eight big-endian bytes follow) declares a ~1.8e19-byte message,
// tripping gob's message-size guard on the first read rather than leaving
// the decoder waiting for payload.
func gobGarbage() []byte {
	return []byte{0xf8, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// binGarbage is a frame no binary (v4) decoder accepts: a valid event-batch
// tag whose uvarint payload length exceeds maxFrameLen, tripping the frame
// size guard before any payload bytes are read.
func binGarbage() []byte {
	return binary.AppendUvarint([]byte{tagEventBatch}, uint64(maxFrameLen)+1)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestMalformedFramesServer feeds the server raw garbage and a well-formed
// frame with an unknown tag: each must kill only that connection and bump
// remote_server_decode_errors_total — typed failure, never a hang.
func TestMalformedFramesServer(t *testing.T) {
	reg := metrics.NewRegistry()
	hub := core.NewHub(core.HubConfig{Metrics: reg})
	defer hub.Close()
	srv, err := ServeWith("127.0.0.1:0", hub, nopSnap{}, ServerConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Raw garbage: a gob message-length prefix declaring an absurd size, so
	// the decoder fails immediately instead of waiting for payload bytes.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write(gobGarbage()); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "garbage counted", func() bool {
		return reg.Snapshot().Counters["remote_server_decode_errors_total"] >= 1
	})

	// Unknown tag on an otherwise valid gob stream.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(uint8(99)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "unknown tag counted", func() bool {
		return reg.Snapshot().Counters["remote_server_decode_errors_total"] >= 2
	})
	waitUntil(t, "poisoned conns reaped", func() bool { return len(srv.Conns()) == 0 })
}

// TestMalformedFrameClient runs the client against a fake server that
// responds with garbage: the connection must fail with a typed
// *ProtocolError (surfaced from subsequent calls), the decode-error counter
// must bump, and the watch must get its terminal resync.
func TestMalformedFrameClient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() { // drain the client's hello/watch frames
			buf := make([]byte, 1024)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
			}
		}()
		time.Sleep(10 * time.Millisecond)
		conn.Write(gobGarbage())
	}()

	reg := metrics.NewRegistry()
	client, err := DialWith(ln.Addr().String(), ClientConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resyncCh := make(chan core.ResyncEvent, 1)
	if _, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Resync: func(r core.ResyncEvent) { resyncCh <- r },
	}); err != nil {
		t.Fatal(err)
	}

	select {
	case <-resyncCh:
	case <-time.After(5 * time.Second):
		t.Fatal("no resync after protocol error")
	}
	if got := reg.Snapshot().Counters["remote_client_decode_errors_total"]; got != 1 {
		t.Fatalf("remote_client_decode_errors_total = %d, want 1", got)
	}
	_, err = client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{})
	var perr *ProtocolError
	if !errors.As(err, &perr) {
		t.Fatalf("Watch after protocol error = %v, want wrapped *ProtocolError", err)
	}
}

// TestMalformedBinaryFrameServer completes a real v4 negotiation (gob hello,
// gob upgrade marker) and then feeds the server's binary decoder a frame
// whose length field exceeds maxFrameLen. The server must reject it as a
// typed decode error — never allocate the declared size — and reap only that
// connection.
func TestMalformedBinaryFrameServer(t *testing.T) {
	reg := metrics.NewRegistry()
	hub := core.NewHub(core.HubConfig{Metrics: reg})
	defer hub.Close()
	srv, err := ServeWith("127.0.0.1:0", hub, nopSnap{}, ServerConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() { // drain the server's hello reply + upgrade + heartbeats
		buf := make([]byte, 1024)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	enc := gob.NewEncoder(conn)
	for _, v := range []any{uint8(tagHello), &helloMsg{Version: protoV4, HeartbeatMillis: 1000}, uint8(tagUpgrade)} {
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	// The server's decoder is now binary for this connection.
	if _, err := conn.Write(binGarbage()); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "binary garbage counted", func() bool {
		return reg.Snapshot().Counters["remote_server_decode_errors_total"] >= 1
	})
	waitUntil(t, "poisoned conn reaped", func() bool { return len(srv.Conns()) == 0 })
}

// TestMalformedBinaryFrameClient is the mirror image: a fake server
// negotiates v4 with a real client, sends the gob upgrade marker, then
// injects an over-length binary frame. The client must surface a typed
// *ProtocolError, bump remote_client_decode_errors_total, and deliver the
// watch its terminal resync.
func TestMalformedBinaryFrameClient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		dec := gob.NewDecoder(conn)
		var tag uint8
		var h helloMsg
		if dec.Decode(&tag) != nil || tag != tagHello || dec.Decode(&h) != nil {
			return
		}
		go func() { // drain the client's upgrade marker + binary watch frames
			buf := make([]byte, 1024)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
			}
		}()
		enc := gob.NewEncoder(conn)
		for _, v := range []any{uint8(tagHello), &helloMsg{Version: protoV4, HeartbeatMillis: h.HeartbeatMillis}, uint8(tagUpgrade)} {
			if enc.Encode(v) != nil {
				return
			}
		}
		time.Sleep(10 * time.Millisecond) // let the watch request land first
		conn.Write(binGarbage())
	}()

	reg := metrics.NewRegistry()
	client, err := DialWith(ln.Addr().String(), ClientConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resyncCh := make(chan core.ResyncEvent, 1)
	if _, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Resync: func(r core.ResyncEvent) { resyncCh <- r },
	}); err != nil {
		t.Fatal(err)
	}

	select {
	case <-resyncCh:
	case <-time.After(5 * time.Second):
		t.Fatal("no resync after binary protocol error")
	}
	if got := reg.Snapshot().Counters["remote_client_decode_errors_total"]; got != 1 {
		t.Fatalf("remote_client_decode_errors_total = %d, want 1", got)
	}
	_, err = client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{})
	var perr *ProtocolError
	if !errors.As(err, &perr) {
		t.Fatalf("Watch after binary protocol error = %v, want wrapped *ProtocolError", err)
	}
}

// TestOverflowPreservesRecoveryFrameOrder is the white-box half of the
// overflow coverage: overflowLocked must drop exactly the event/progress
// backlog while keeping resync and snapshot-chunk frames in their original
// per-watch order, prefixed by one overflow resync per live watch.
func TestOverflowPreservesRecoveryFrameOrder(t *testing.T) {
	reg := metrics.NewRegistry()
	sc := &serverConn{
		met: newServerMetrics(reg),
		watches: map[uint64]serverWatch{
			1: {cancel: func() {}, rng: keyspace.Full()},
			2: {cancel: func() {}, rng: keyspace.Full()},
		},
	}
	sc.cond = sync.NewCond(&sc.mu)
	sc.spaceCond = sync.NewCond(&sc.mu)

	evFrame := func(id uint64, n int) outFrame {
		p := getEvs(n)
		for i := 0; i < n; i++ {
			*p = append(*p, core.ChangeEvent{Version: core.Version(i + 1)})
		}
		return outFrame{tag: tagEventBatch, id: id, evs: p}
	}
	sc.queue = []outFrame{
		evFrame(1, 3),
		{tag: tagResync, id: 1, resync: core.ResyncEvent{Reason: "first"}},
		{tag: tagProgress, id: 2, prog: core.ProgressEvent{Version: 9}},
		{tag: tagSnapChunk, id: 1, chunk: &snapChunk{ID: 1, At: 5}},
		evFrame(2, 4),
		{tag: tagResync, id: 1, resync: core.ResyncEvent{Reason: "second"}},
		{tag: tagSnapChunk, id: 1, chunk: &snapChunk{ID: 1, At: 6, Last: true}},
	}
	sc.queuedEvs = 8

	sc.mu.Lock()
	sc.overflowLocked()
	kept := append([]outFrame(nil), sc.queue...)
	queuedEvs := sc.queuedEvs
	sc.mu.Unlock()

	if queuedEvs != 0 {
		t.Fatalf("queuedEvs = %d after overflow, want 0", queuedEvs)
	}
	// Prefix: one overflow resync per live watch (map order unspecified).
	if len(kept) != 6 {
		t.Fatalf("kept %d frames, want 6 (2 overflow resyncs + 4 recovery frames)", len(kept))
	}
	prefix := map[uint64]bool{}
	for _, f := range kept[:2] {
		if f.tag != tagResync || !contains(f.resync.Reason, "overflow") {
			t.Fatalf("overflow prefix frame = %+v, want overflow resync", f)
		}
		prefix[f.id] = true
	}
	if !prefix[1] || !prefix[2] {
		t.Fatalf("overflow resyncs cover watches %v, want {1,2}", prefix)
	}
	// Suffix: the surviving recovery frames in original order.
	wantTail := []struct {
		tag    uint8
		reason string
		at     core.Version
	}{
		{tagResync, "first", 0},
		{tagSnapChunk, "", 5},
		{tagResync, "second", 0},
		{tagSnapChunk, "", 6},
	}
	for i, want := range wantTail {
		f := kept[2+i]
		if f.tag != want.tag {
			t.Fatalf("kept[%d].tag = %d, want %d", 2+i, f.tag, want.tag)
		}
		if want.tag == tagResync && f.resync.Reason != want.reason {
			t.Fatalf("kept[%d] resync reason %q, want %q", 2+i, f.resync.Reason, want.reason)
		}
		if want.tag == tagSnapChunk && f.chunk.At != want.at {
			t.Fatalf("kept[%d] chunk At %d, want %d", 2+i, f.chunk.At, want.at)
		}
	}
	if got := reg.Snapshot().Counters["remote_server_overflow_resyncs_total"]; got != 2 {
		t.Fatalf("remote_server_overflow_resyncs_total = %d, want 2", got)
	}
}

// gatedSink wraps a SyncedConsumer with a stall switch: while held, the
// client's read loop blocks in the consumer, which is exactly how a slow
// application backs the transport up.
type gatedSink struct {
	inner core.SyncedConsumer
	hold  atomic.Bool
}

func (g *gatedSink) ResetSnapshot(r keyspace.Range, entries []core.Entry, at core.Version) {
	g.inner.ResetSnapshot(r, entries, at)
}

func (g *gatedSink) ApplyChange(ev core.ChangeEvent) {
	for g.hold.Load() {
		time.Sleep(time.Millisecond)
	}
	g.inner.ApplyChange(ev)
}

func (g *gatedSink) AdvanceFrontier(p core.ProgressEvent) { g.inner.AdvanceFrontier(p) }

// TestPostOverflowResumeConverges is the end-to-end half of the overflow
// coverage, on a v2 (no-hello) client for interop: a stalled consumer backs
// the server's outbox past its bound, the overflow resync flows once the
// stall lifts, the ResyncWatcher recovers by snapshot, and a subsequent
// sever/reconnect converges again.
func TestPostOverflowResumeConverges(t *testing.T) {
	reg := metrics.NewRegistry()
	ws := mvcc.NewWatchableStore(core.HubConfig{Retention: 1 << 16, WatcherBuffer: 1 << 17, Metrics: reg})
	defer ws.Close()
	srv, err := ServeWith("127.0.0.1:0", ws, ws, ServerConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctrl := NewChaosController(ChaosConfig{})
	client, err := DialWith(srv.Addr(), ClientConfig{
		Metrics:           reg,
		HeartbeatInterval: -1, // speak v2: no hello, no heartbeats
		Reconnect:         fastReconnect(),
		Dialer:            ctrl.Dialer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitUntil(t, "server sees conn", func() bool { return len(srv.Conns()) == 1 })
	if infos := srv.Conns(); infos[0].Protocol != protoV2 {
		t.Fatalf("server negotiated protocol %d for hello-less client, want %d", infos[0].Protocol, protoV2)
	}

	sink := &mapSink{mu: &sync.Mutex{}, state: make(map[keyspace.Key]string)}
	gate := &gatedSink{inner: sink}
	rw := core.NewResyncWatcher(client, client, keyspace.Full(), gate)
	if err := rw.Start(); err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()

	converged := func() bool {
		entries, _, err := ws.SnapshotRange(keyspace.Full())
		if err != nil {
			return false
		}
		sink.mu.Lock()
		defer sink.mu.Unlock()
		if len(sink.state) != len(entries) {
			return false
		}
		for _, e := range entries {
			if sink.state[e.Key] != string(e.Value) {
				return false
			}
		}
		return true
	}

	for i := 0; i < 50; i++ {
		ws.Put(keyspace.NumericKey(i), []byte("seed"))
	}
	waitUntil(t, "initial convergence", func() bool { return converged() })

	// Stall the consumer and flood well past the outbox bound: the server
	// must lag this connection out with an overflow resync, not block. The
	// values are large enough that the flood cannot hide in kernel socket
	// buffers — the writer has to stall and the outbox has to fill.
	gate.hold.Store(true)
	val := make([]byte, 1024)
	for i := 0; i < 4*outboundLimit; i++ {
		ws.Put(keyspace.NumericKey(i%200), val)
	}
	waitUntil(t, "outbox overflow", func() bool {
		return reg.Snapshot().Counters["remote_server_overflow_resyncs_total"] >= 1
	})
	gate.hold.Store(false)
	waitUntil(t, "resync recovery", func() bool { return rw.Resyncs() >= 1 && converged() })

	// Now kill the connection outright: reconnect-resume must converge too.
	dials := ctrl.Dials()
	ctrl.SeverAll()
	waitUntil(t, "reconnect", func() bool { return ctrl.Dials() > dials })
	for i := 0; i < 50; i++ {
		ws.Put(keyspace.NumericKey(i), []byte("after-sever"))
	}
	waitUntil(t, "post-sever convergence", func() bool { return converged() })
}

// TestV2InteropIdle pins the negotiation contract: a client that never sends
// a hello is v2, and the server must not send it heartbeat frames (which a
// real legacy decoder would reject) no matter how long the stream idles.
func TestV2InteropIdle(t *testing.T) {
	reg := metrics.NewRegistry()
	hub := core.NewHub(core.HubConfig{Metrics: reg})
	defer hub.Close()
	srv, err := ServeWith("127.0.0.1:0", hub, nopSnap{}, ServerConfig{
		Metrics:           reg,
		HeartbeatInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialWith(srv.Addr(), ClientConfig{Metrics: reg, HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var delivered atomic.Int64
	cancel, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
		Event: func(core.ChangeEvent) { delivered.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	time.Sleep(100 * time.Millisecond) // 20 server heartbeat intervals of idle
	if err := hub.Append(core.ChangeEvent{
		Key:     keyspace.NumericKey(1),
		Mut:     core.Mutation{Op: core.OpPut, Value: []byte("v")},
		Version: 1,
	}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "delivery after idle", func() bool { return delivered.Load() == 1 })

	snap := reg.Snapshot()
	if got := snap.Counters["remote_server_heartbeats_total"]; got != 0 {
		t.Fatalf("server sent %d heartbeats to a v2 client", got)
	}
	if got := snap.Counters["remote_client_heartbeats_total"]; got != 0 {
		t.Fatalf("v2 client sent %d heartbeats", got)
	}
}
