package remote

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden wire-format fixtures under testdata/golden")

// newTestEncoder returns a binary encoder writing into buf.
func newTestEncoder(buf *bytes.Buffer) (*binEncoder, *bufio.Writer) {
	bw := bufio.NewWriter(buf)
	return newBinEncoder(bw), bw
}

// goldenFrames are the canonical frames of the golden wire-format test: every
// frame type, covering literal and dictionary keys, put and delete ops,
// nil / empty / non-empty values, traced and untraced events, and negative
// version deltas. encode builds the frame (one encoder per fixture, except
// where the fixture itself exercises cross-event dictionary state); check
// decodes the fixture bytes back and compares against the expected struct.
var goldenFrames = []struct {
	name   string
	encode func(e *binEncoder) error
	check  func(t *testing.T, d *binDecoder, tag uint8)
}{
	{
		name:   "hello",
		encode: func(e *binEncoder) error { return e.hello(&helloMsg{Version: 4, HeartbeatMillis: 1000}) },
		check: func(t *testing.T, d *binDecoder, tag uint8) {
			requireTag(t, tag, tagHello)
			var h helloMsg
			if err := d.decodeHello(&h); err != nil {
				t.Fatal(err)
			}
			want := helloMsg{Version: 4, HeartbeatMillis: 1000}
			if h != want {
				t.Fatalf("decoded %+v, want %+v", h, want)
			}
		},
	},
	{
		name:   "heartbeat",
		encode: func(e *binEncoder) error { return e.heartbeat() },
		check:  func(t *testing.T, d *binDecoder, tag uint8) { requireTag(t, tag, tagHeartbeat) },
	},
	{
		name:   "upgrade",
		encode: func(e *binEncoder) error { return e.upgrade() },
		check:  func(t *testing.T, d *binDecoder, tag uint8) { requireTag(t, tag, tagUpgrade) },
	},
	{
		name:   "shutdown",
		encode: func(e *binEncoder) error { return e.shutdown(&shutdownMsg{Reason: "remote: server draining"}) },
		check: func(t *testing.T, d *binDecoder, tag uint8) {
			requireTag(t, tag, tagShutdown)
			var m shutdownMsg
			if err := d.decodeShutdown(&m); err != nil {
				t.Fatal(err)
			}
			if m.Reason != "remote: server draining" {
				t.Fatalf("reason %q", m.Reason)
			}
		},
	},
	{
		name:   "watch",
		encode: func(e *binEncoder) error { return e.watch(&watchReq{ID: 7, Low: "a", High: "q", From: 42}) },
		check: func(t *testing.T, d *binDecoder, tag uint8) {
			requireTag(t, tag, tagWatch)
			var w watchReq
			if err := d.decodeWatch(&w); err != nil {
				t.Fatal(err)
			}
			want := watchReq{ID: 7, Low: "a", High: "q", From: 42}
			if w != want {
				t.Fatalf("decoded %+v, want %+v", w, want)
			}
		},
	},
	{
		name:   "cancel",
		encode: func(e *binEncoder) error { return e.cancelWatch(&cancelReq{ID: 7}) },
		check: func(t *testing.T, d *binDecoder, tag uint8) {
			requireTag(t, tag, tagCancel)
			var cr cancelReq
			if err := d.decodeCancel(&cr); err != nil {
				t.Fatal(err)
			}
			if cr.ID != 7 {
				t.Fatalf("id %d", cr.ID)
			}
		},
	},
	{
		name: "snapshot",
		encode: func(e *binEncoder) error {
			return e.snapshot(&snapshotReq{ID: 9, Low: "", High: keyspace.Inf})
		},
		check: func(t *testing.T, d *binDecoder, tag uint8) {
			requireTag(t, tag, tagSnapshot)
			var sr snapshotReq
			if err := d.decodeSnapshot(&sr); err != nil {
				t.Fatal(err)
			}
			want := snapshotReq{ID: 9, Low: "", High: keyspace.Inf}
			if sr != want {
				t.Fatalf("decoded %+v, want %+v", sr, want)
			}
		},
	},
	{
		name: "progress",
		encode: func(e *binEncoder) error {
			return e.progress(7, core.ProgressEvent{Range: keyspace.Range{Low: "a", High: "q"}, Version: 99})
		},
		check: func(t *testing.T, d *binDecoder, tag uint8) {
			requireTag(t, tag, tagProgress)
			var m progressMsg
			if err := d.decodeProgress(&m); err != nil {
				t.Fatal(err)
			}
			want := progressMsg{ID: 7, P: core.ProgressEvent{Range: keyspace.Range{Low: "a", High: "q"}, Version: 99}}
			if m != want {
				t.Fatalf("decoded %+v, want %+v", m, want)
			}
		},
	},
	{
		name: "resync",
		encode: func(e *binEncoder) error {
			return e.resync(7, core.ResyncEvent{Range: keyspace.Full(), MinVersion: 5, Reason: "overflow"})
		},
		check: func(t *testing.T, d *binDecoder, tag uint8) {
			requireTag(t, tag, tagResync)
			var m resyncMsg
			if err := d.decodeResync(&m); err != nil {
				t.Fatal(err)
			}
			want := resyncMsg{ID: 7, R: core.ResyncEvent{Range: keyspace.Full(), MinVersion: 5, Reason: "overflow"}}
			if m != want {
				t.Fatalf("decoded %+v, want %+v", m, want)
			}
		},
	},
	{
		name:   "event_batch",
		encode: func(e *binEncoder) error { return e.eventBatch(7, goldenBatch()) },
		check: func(t *testing.T, d *binDecoder, tag uint8) {
			requireTag(t, tag, tagEventBatch)
			var m eventBatchMsg
			if err := d.decodeEventBatch(&m); err != nil {
				t.Fatal(err)
			}
			if m.ID != 7 || !reflect.DeepEqual(m.Evs, goldenBatch()) {
				t.Fatalf("decoded %+v, want id 7 evs %+v", m, goldenBatch())
			}
		},
	},
	{
		name:   "event_batch_empty",
		encode: func(e *binEncoder) error { return e.eventBatch(1, nil) },
		check: func(t *testing.T, d *binDecoder, tag uint8) {
			requireTag(t, tag, tagEventBatch)
			var m eventBatchMsg
			if err := d.decodeEventBatch(&m); err != nil {
				t.Fatal(err)
			}
			if m.ID != 1 || len(m.Evs) != 0 {
				t.Fatalf("decoded %+v, want empty batch id 1", m)
			}
		},
	},
	{
		name:   "snap_chunk",
		encode: func(e *binEncoder) error { return e.snapChunk(goldenChunk()) },
		check: func(t *testing.T, d *binDecoder, tag uint8) {
			requireTag(t, tag, tagSnapChunk)
			var m snapChunk
			if err := d.decodeSnapChunk(&m); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(&m, goldenChunk()) {
				t.Fatalf("decoded %+v, want %+v", m, *goldenChunk())
			}
		},
	},
	{
		name: "snap_chunk_err",
		encode: func(e *binEncoder) error {
			return e.snapChunk(&snapChunk{ID: 3, Err: "boom", Last: true})
		},
		check: func(t *testing.T, d *binDecoder, tag uint8) {
			requireTag(t, tag, tagSnapChunk)
			var m snapChunk
			if err := d.decodeSnapChunk(&m); err != nil {
				t.Fatal(err)
			}
			want := snapChunk{ID: 3, Err: "boom", Last: true}
			if !reflect.DeepEqual(m, want) {
				t.Fatalf("decoded %+v, want %+v", m, want)
			}
		},
	},
}

// goldenBatch exercises every event-level encoding feature in one frame:
// literal keys entering the dictionary (events 1-2), dictionary references
// back to them (events 3-4), put and delete, nil / empty / binary values, a
// traced event, and a negative version delta (event 4 steps backwards).
func goldenBatch() []core.ChangeEvent {
	return []core.ChangeEvent{
		{Key: "users/000000000001", Mut: core.Mutation{Op: core.OpPut, Value: []byte("alpha")}, Version: 100},
		{Key: "users/000000000002", Mut: core.Mutation{Op: core.OpDelete}, Version: 101, Trace: 0xdeadbeef},
		{Key: "users/000000000001", Mut: core.Mutation{Op: core.OpPut, Value: []byte{}}, Version: 103},
		{Key: "users/000000000002", Mut: core.Mutation{Op: core.OpPut, Value: []byte{0x00, 0xff}}, Version: 90},
	}
}

func goldenChunk() *snapChunk {
	return &snapChunk{
		ID: 9,
		Entries: []core.Entry{
			{Key: "a", Value: nil, Version: 5},
			{Key: "b", Value: []byte{}, Version: 6},
			{Key: "c", Value: []byte("xyz"), Version: 4},
		},
		At:   6,
		Last: true,
	}
}

func requireTag(t *testing.T, got, want uint8) {
	t.Helper()
	if got != want {
		t.Fatalf("frame tag = %d, want %d", got, want)
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".hex")
}

// TestGoldenWireFormat pins the v4 byte layout: every canonical frame must
// encode to exactly the committed hex fixture, and the fixture must decode
// back to the expected value. Any codec change that shifts bytes fails here
// loudly; deliberate format changes regenerate with -update-golden (which is
// a protocol version bump, not a patch). The fixtures double as the
// FuzzDecodeFrame seed corpus.
func TestGoldenWireFormat(t *testing.T) {
	for _, g := range goldenFrames {
		t.Run(g.name, func(t *testing.T) {
			var buf bytes.Buffer
			enc, bw := newTestEncoder(&buf)
			if err := g.encode(enc); err != nil {
				t.Fatal(err)
			}
			if err := bw.Flush(); err != nil {
				t.Fatal(err)
			}
			got := hex.EncodeToString(buf.Bytes())

			path := goldenPath(g.name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update-golden): %v", err)
			}
			if got != strings.TrimSpace(string(want)) {
				t.Fatalf("wire layout changed:\n got %s\nwant %s", got, strings.TrimSpace(string(want)))
			}

			// And the fixture decodes back to the value that produced it.
			dec := newBinDecoder(bufio.NewReader(bytes.NewReader(buf.Bytes())))
			tag, err := dec.readTag()
			if err != nil {
				t.Fatal(err)
			}
			g.check(t, dec, tag)
		})
	}
}

// randBatch builds a pseudo-random but wire-realistic batch: keys from a hot
// set (so the dictionary path is exercised), near-monotonic versions with
// occasional jumps backwards, mixed ops, values of varying size including nil
// and empty, sparse traces.
func randBatch(rng *rand.Rand, n int, ver *core.Version) []core.ChangeEvent {
	evs := make([]core.ChangeEvent, n)
	for i := range evs {
		*ver += core.Version(rng.Intn(3))
		if rng.Intn(16) == 0 && *ver > 50 {
			*ver -= 40
		}
		ev := core.ChangeEvent{
			Key:     keyspace.NumericKey(rng.Intn(200)),
			Version: *ver,
		}
		switch rng.Intn(4) {
		case 0:
			ev.Mut = core.Mutation{Op: core.OpDelete}
		case 1:
			ev.Mut = core.Mutation{Op: core.OpPut, Value: []byte{}}
		default:
			v := make([]byte, rng.Intn(48))
			rng.Read(v)
			ev.Mut = core.Mutation{Op: core.OpPut, Value: v}
		}
		if rng.Intn(8) == 0 {
			ev.Trace = rng.Uint64()
		}
		evs[i] = ev
	}
	return evs
}

// TestCodecRoundTripRandom streams many random frames through one
// encoder/decoder pair — the per-connection shape, so the key dictionary
// accumulates state across frames — and requires exact round-trips.
func TestCodecRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var buf bytes.Buffer
	enc, bw := newTestEncoder(&buf)

	const frames = 200
	var ver core.Version
	sent := make([][]core.ChangeEvent, frames)
	for i := range sent {
		sent[i] = randBatch(rng, 1+rng.Intn(64), &ver)
		if err := enc.eventBatch(uint64(i), sent[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	dec := newBinDecoder(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	var m eventBatchMsg
	for i := range sent {
		tag, err := dec.readTag()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		requireTag(t, tag, tagEventBatch)
		if err := dec.decodeEventBatch(&m); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m.ID != uint64(i) || !reflect.DeepEqual(m.Evs, sent[i]) {
			t.Fatalf("frame %d mismatched after round trip", i)
		}
	}
}

// TestCodecKeyDictCap crosses the dictionary capacity: beyond keyDictCap
// distinct keys both sides must stop adding by the same rule and keep
// round-tripping (later keys travel as literals).
func TestCodecKeyDictCap(t *testing.T) {
	var buf bytes.Buffer
	enc, bw := newTestEncoder(&buf)
	const total = keyDictCap + 500
	const per = 1000
	var frames [][]core.ChangeEvent
	for base := 0; base < total; base += per {
		evs := make([]core.ChangeEvent, 0, per)
		for i := base; i < base+per && i < total; i++ {
			evs = append(evs, core.ChangeEvent{
				Key:     keyspace.Key(fmt.Sprintf("k%07d", i)),
				Mut:     core.Mutation{Op: core.OpPut, Value: []byte("v")},
				Version: core.Version(i + 1),
			})
		}
		// Re-reference an early (dictionary-resident) key in every frame so
		// refs and post-cap literals interleave.
		evs = append(evs, core.ChangeEvent{
			Key:     keyspace.Key(fmt.Sprintf("k%07d", 0)),
			Mut:     core.Mutation{Op: core.OpPut, Value: []byte("w")},
			Version: core.Version(base + per + 1),
		})
		if err := enc.eventBatch(uint64(len(frames)), evs); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, evs)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(enc.keys) != keyDictCap {
		t.Fatalf("encoder dictionary size %d, want %d", len(enc.keys), keyDictCap)
	}

	dec := newBinDecoder(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	var m eventBatchMsg
	for i, want := range frames {
		if _, err := dec.readTag(); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if err := dec.decodeEventBatch(&m); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(m.Evs, want) {
			t.Fatalf("frame %d mismatched after dict cap", i)
		}
	}
	if len(dec.keys) != keyDictCap {
		t.Fatalf("decoder dictionary size %d, want %d", len(dec.keys), keyDictCap)
	}
}

// TestCodecValueRetention decodes one frame, retains its values (the
// EventBatchCallback contract allows it), then decodes more frames into the
// same decoder: the retained bytes must not be overwritten by scratch reuse.
func TestCodecValueRetention(t *testing.T) {
	var buf bytes.Buffer
	enc, bw := newTestEncoder(&buf)
	first := []core.ChangeEvent{
		{Key: "a", Mut: core.Mutation{Op: core.OpPut, Value: []byte("hold-me")}, Version: 1},
		{Key: "b", Mut: core.Mutation{Op: core.OpPut, Value: []byte("me-too")}, Version: 2},
	}
	if err := enc.eventBatch(1, first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		evs := []core.ChangeEvent{{
			Key:     "a",
			Mut:     core.Mutation{Op: core.OpPut, Value: bytes.Repeat([]byte{byte(i)}, 64)},
			Version: core.Version(3 + i),
		}}
		if err := enc.eventBatch(uint64(2+i), evs); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	dec := newBinDecoder(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	var m eventBatchMsg
	if _, err := dec.readTag(); err != nil {
		t.Fatal(err)
	}
	if err := dec.decodeEventBatch(&m); err != nil {
		t.Fatal(err)
	}
	retained := make([][]byte, len(m.Evs))
	for i := range m.Evs {
		retained[i] = m.Evs[i].Mut.Value
	}
	for {
		if _, err := dec.readTag(); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		if err := dec.decodeEventBatch(&m); err != nil {
			t.Fatal(err)
		}
	}
	if string(retained[0]) != "hold-me" || string(retained[1]) != "me-too" {
		t.Fatalf("retained values corrupted by later decodes: %q %q", retained[0], retained[1])
	}
}

// corruptCase is one malformed-payload scenario for the decode hardening
// test: mutate a valid frame and require a clean error (no panic, no hang).
type corruptCase struct {
	name    string
	mutate  func(frame []byte) []byte
	wantErr error // nil: any error accepted
}

// TestDecodeFrameHardening mutates valid frames in targeted ways and
// requires the decoder to reject each with a typed error instead of
// panicking, over-allocating, or reading past the payload.
func TestDecodeFrameHardening(t *testing.T) {
	var buf bytes.Buffer
	enc, bw := newTestEncoder(&buf)
	if err := enc.eventBatch(7, goldenBatch()); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := []corruptCase{
		{
			name: "huge frame length",
			mutate: func(f []byte) []byte {
				// tag, then an absurd uvarint length.
				return []byte{tagEventBatch, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
			},
			wantErr: errFrameTooBig,
		},
		{
			name: "count exceeds payload",
			mutate: func(f []byte) []byte {
				// id=0, count=2^20, no event bytes.
				payload := []byte{0x00, 0x80, 0x80, 0x40}
				out := []byte{tagEventBatch, byte(len(payload))}
				return append(out, payload...)
			},
			wantErr: errBadCount,
		},
		{
			name: "dangling key ref",
			mutate: func(f []byte) []byte {
				// One event referencing dictionary slot 9 of an empty dict.
				payload := []byte{0x01 /*id*/, 0x01 /*count*/, byte(core.OpPut) /*flags: ref key*/, 0x09 /*ref*/, 0x02 /*vdelta*/}
				out := []byte{tagEventBatch, byte(len(payload))}
				return append(out, payload...)
			},
			wantErr: errBadKeyRef,
		},
		{
			name: "trailing bytes",
			mutate: func(f []byte) []byte {
				out := append([]byte{}, f...)
				out[1] += 2 // grow the declared payload
				return append(out, 0xaa, 0xbb)
			},
			wantErr: errTrailing,
		},
		{
			name: "truncated value length",
			mutate: func(f []byte) []byte {
				// id=1, count=1, put with value flag, literal key "k", vdelta,
				// then a value length pointing past the payload end.
				payload := []byte{0x01, 0x01, byte(core.OpPut) | evKeyLiteral | evHasValue, 0x01, 'k', 0x02, 0x7f}
				out := []byte{tagEventBatch, byte(len(payload))}
				return append(out, payload...)
			},
			wantErr: errShortPayload,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte{}, valid...))
			dec := newBinDecoder(bufio.NewReader(bytes.NewReader(data)))
			tag, err := dec.readTag()
			if err == nil {
				var m eventBatchMsg
				requireTag(t, tag, tagEventBatch)
				err = dec.decodeEventBatch(&m)
			}
			if err == nil {
				t.Fatal("malformed frame decoded without error")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestCodecSteadyStateAllocs pins the zero-alloc claim: once the scratch
// buffers and dictionary are warm, encoding a batch of dictionary-resident
// keys allocates nothing, and decoding allocates exactly one value block per
// frame.
func TestCodecSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ver core.Version
	batch := randBatch(rng, 64, &ver)

	bw := bufio.NewWriterSize(io.Discard, 1<<20)
	enc := newBinEncoder(bw)
	if err := enc.eventBatch(1, batch); err != nil { // warm scratch + dictionary
		t.Fatal(err)
	}
	encAllocs := testing.AllocsPerRun(100, func() {
		if err := enc.eventBatch(1, batch); err != nil {
			t.Fatal(err)
		}
	})
	if encAllocs != 0 {
		t.Fatalf("encode allocs/op = %v, want 0", encAllocs)
	}

	var buf bytes.Buffer
	enc2, bw2 := newTestEncoder(&buf)
	const frames = 300
	for i := 0; i < frames; i++ {
		if err := enc2.eventBatch(uint64(i), batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw2.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := newBinDecoder(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	var m eventBatchMsg
	// Warm: first frame pays the literal keys + scratch growth.
	if _, err := dec.readTag(); err != nil {
		t.Fatal(err)
	}
	if err := dec.decodeEventBatch(&m); err != nil {
		t.Fatal(err)
	}
	decAllocs := testing.AllocsPerRun(frames-2, func() {
		if _, err := dec.readTag(); err != nil {
			t.Fatal(err)
		}
		if err := dec.decodeEventBatch(&m); err != nil {
			t.Fatal(err)
		}
	})
	// One value block per frame: values are retainable by consumers, so they
	// cannot live in the scratch buffer.
	if decAllocs > 1 {
		t.Fatalf("decode allocs/op = %v, want <= 1", decAllocs)
	}
}

// benchBatch is the codec microbench workload: 64 events over a 64-key hot
// set, 16-byte values, sequential versions — the RemoteFanout shape.
func benchBatch() []core.ChangeEvent {
	evs := make([]core.ChangeEvent, 64)
	for i := range evs {
		evs[i] = core.ChangeEvent{
			Key:     keyspace.NumericKey(i % 64),
			Mut:     core.Mutation{Op: core.OpPut, Value: bytes.Repeat([]byte{byte(i)}, 16)},
			Version: core.Version(i + 1),
		}
	}
	return evs
}

// BenchmarkCodecEncodeBatch compares the two codecs encoding the same
// 64-event batch in the same process (same-session A/B — cross-session
// labels are noise on this host).
func BenchmarkCodecEncodeBatch(b *testing.B) {
	batch := benchBatch()
	b.Run("gob", func(b *testing.B) {
		bw := bufio.NewWriterSize(io.Discard, 1<<20)
		enc := newGobFrameEncoder(gob.NewEncoder(bw))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.eventBatch(1, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		bw := bufio.NewWriterSize(io.Discard, 1<<20)
		enc := newBinEncoder(bw)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.eventBatch(1, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCodecDecodeBatch decodes a pre-encoded stream of 64-event frames,
// gob vs binary, same process. Each inner pass re-reads the same stream; the
// per-op unit is one frame (64 events).
func BenchmarkCodecDecodeBatch(b *testing.B) {
	batch := benchBatch()
	const frames = 256

	b.Run("gob", func(b *testing.B) {
		var buf bytes.Buffer
		enc := newGobFrameEncoder(gob.NewEncoder(&buf))
		for i := 0; i < frames; i++ {
			if err := enc.eventBatch(uint64(i), batch); err != nil {
				b.Fatal(err)
			}
		}
		stream := buf.Bytes()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; {
			dec := newGobFrameDecoder(gob.NewDecoder(bytes.NewReader(stream)))
			var m eventBatchMsg
			for j := 0; j < frames && i < b.N; j, i = j+1, i+1 {
				if _, err := dec.readTag(); err != nil {
					b.Fatal(err)
				}
				if err := dec.decodeEventBatch(&m); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		var buf bytes.Buffer
		enc, bw := newTestEncoder(&buf)
		for i := 0; i < frames; i++ {
			if err := enc.eventBatch(uint64(i), batch); err != nil {
				b.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
		stream := buf.Bytes()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; {
			dec := newBinDecoder(bufio.NewReader(bytes.NewReader(stream)))
			var m eventBatchMsg
			for j := 0; j < frames && i < b.N; j, i = j+1, i+1 {
				if _, err := dec.readTag(); err != nil {
					b.Fatal(err)
				}
				if err := dec.decodeEventBatch(&m); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
