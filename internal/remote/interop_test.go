package remote

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"unbundle/internal/core"
	"unbundle/internal/keyspace"
	"unbundle/internal/metrics"
)

// TestCrossVersionInterop is the protocol compatibility matrix: every
// supported client/server version pairing runs a real watch through a forced
// sever + reconnect + resume, and must converge byte-equal with no
// duplicates and the expected negotiated protocol and codec on both ends.
// v4↔v4 speaks binary; any pairing with a ≤v3 peer falls back to gob; a v2
// client (no hello) still gets the v2 contract. Runs under -race via make
// chaos.
func TestCrossVersionInterop(t *testing.T) {
	cases := []struct {
		name        string
		clientMax   int // ClientConfig.MaxProtocol (0 = newest)
		serverMax   int // ServerConfig.MaxProtocol (0 = newest)
		wantProto   int // negotiated version, both ends
		wantCodec   string
		clientHello bool // whether the client announces at all
	}{
		{name: "v4-client_v4-server", clientMax: 0, serverMax: 0, wantProto: 4, wantCodec: "binary", clientHello: true},
		{name: "v4-client_v3-server", clientMax: 0, serverMax: 3, wantProto: 3, wantCodec: "gob", clientHello: true},
		{name: "v3-client_v4-server", clientMax: 3, serverMax: 0, wantProto: 3, wantCodec: "gob", clientHello: true},
		{name: "v2-client_v4-server", clientMax: 2, serverMax: 0, wantProto: 2, wantCodec: "gob", clientHello: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := metrics.NewRegistry()
			hub := core.NewHub(core.HubConfig{Retention: 1 << 16, WatcherBuffer: 1 << 16, Metrics: reg})
			defer hub.Close()
			srv, err := ServeWith("127.0.0.1:0", hub, nopSnap{}, ServerConfig{
				Metrics:           reg,
				HeartbeatInterval: 20 * time.Millisecond,
				MaxProtocol:       tc.serverMax,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			ctrl := NewChaosController(ChaosConfig{})
			client, err := DialWith(srv.Addr(), ClientConfig{
				Metrics:           reg,
				HeartbeatInterval: 20 * time.Millisecond,
				MaxProtocol:       tc.clientMax,
				Reconnect:         fastReconnect(),
				Dialer:            ctrl.Dialer(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()

			// Replica: last value per key, byte-compared against the source
			// of truth at the end.
			var mu sync.Mutex
			replica := make(map[keyspace.Key][]byte)
			lastByKey := make(map[keyspace.Key]core.Version)
			var dups, resyncs int
			var delivered int
			cancel, err := client.Watch(keyspace.Full(), core.NoVersion, core.Funcs{
				Event: func(ev core.ChangeEvent) {
					mu.Lock()
					if ev.Version <= lastByKey[ev.Key] {
						dups++
					} else {
						lastByKey[ev.Key] = ev.Version
						replica[ev.Key] = append([]byte(nil), ev.Mut.Value...)
						delivered++
					}
					mu.Unlock()
				},
				Resync: func(core.ResyncEvent) {
					mu.Lock()
					resyncs++
					mu.Unlock()
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cancel()

			truth := make(map[keyspace.Key][]byte)
			v := 0
			produce := func(n int) {
				for i := 0; i < n; i++ {
					v++
					key := keyspace.NumericKey(v % 32)
					val := []byte(fmt.Sprintf("%s:%d", tc.name, v))
					truth[key] = val
					if err := hub.Append(core.ChangeEvent{
						Key:     key,
						Mut:     core.Mutation{Op: core.OpPut, Value: val},
						Version: core.Version(v),
					}); err != nil {
						t.Fatal(err)
					}
				}
			}
			count := func() int {
				mu.Lock()
				defer mu.Unlock()
				return delivered
			}

			produce(100)
			waitUntil(t, "first round delivered", func() bool { return count() == 100 })

			// Kill the connection mid-stream; resume must cover the gap on a
			// fresh connection that re-negotiates the same protocol.
			dials := ctrl.Dials()
			ctrl.SeverAll()
			produce(100) // lands while disconnected
			waitUntil(t, "reconnect", func() bool { return ctrl.Dials() > dials })
			produce(100)
			waitUntil(t, "all rounds delivered", func() bool { return count() == 300 })

			mu.Lock()
			if dups != 0 {
				mu.Unlock()
				t.Fatalf("%d duplicates across reconnect", dups)
			}
			if resyncs != 0 {
				mu.Unlock()
				t.Fatalf("%d resyncs; retention covered the gap", resyncs)
			}
			if len(replica) != len(truth) {
				mu.Unlock()
				t.Fatalf("replica has %d keys, truth %d", len(replica), len(truth))
			}
			for k, want := range truth {
				if !bytes.Equal(replica[k], want) {
					mu.Unlock()
					t.Fatalf("key %q: replica %q, truth %q", k, replica[k], want)
				}
			}
			mu.Unlock()

			// Both ends agree on what was negotiated.
			waitUntil(t, "server reaps severed conn", func() bool { return len(srv.Conns()) == 1 })
			conns := srv.Conns()
			if conns[0].Protocol != tc.wantProto || conns[0].Codec != tc.wantCodec {
				t.Fatalf("server sees protocol %d codec %q, want %d %q",
					conns[0].Protocol, conns[0].Codec, tc.wantProto, tc.wantCodec)
			}
			cver, ccodec := client.ProtocolInfo()
			if cver != tc.wantProto || ccodec != tc.wantCodec {
				t.Fatalf("client reports protocol %d codec %q, want %d %q", cver, ccodec, tc.wantProto, tc.wantCodec)
			}

			// Codec frame counters make the mixed fleet observable: binary
			// pairings push v4 frames both directions, gob pairings none.
			snap := reg.Snapshot()
			sv4 := snap.Counters["remote_server_codec_frames_v4_total"]
			cv4 := snap.Counters["remote_client_codec_frames_v4_total"]
			if tc.wantCodec == "binary" {
				if sv4 == 0 || cv4 == 0 {
					t.Fatalf("binary pairing recorded no v4 frames (server %d, client %d)", sv4, cv4)
				}
			} else if sv4 != 0 || cv4 != 0 {
				t.Fatalf("gob pairing recorded v4 frames (server %d, client %d)", sv4, cv4)
			}
			if snap.Counters["remote_server_codec_frames_v3_total"] == 0 {
				t.Fatal("no gob frames counted; negotiation itself is gob")
			}
			if tc.clientHello != (cver >= 3) {
				t.Fatalf("hello expectation mismatch: clientHello=%v proto=%d", tc.clientHello, cver)
			}
		})
	}
}
