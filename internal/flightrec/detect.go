package flightrec

import (
	"fmt"
	"sync"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/metrics"
)

// The detection layer turns the operator question "is something wrong right
// now?" into a handful of cheap periodic checks. Each detector samples one
// signal per tick — a gauge's level or a counter's per-tick delta — and
// compares it against an EWMA baseline of its own recent steady state. Two
// forms of hysteresis keep steady-state noise from ever firing:
//
//   - breach persistence: the signal must exceed the threshold for
//     Consecutive ticks in a row before the detector fires, so a one-tick
//     blip (a scheduler stall, a single resync) is ignored;
//   - latching: once fired, a detector stays latched — and silent — until
//     the signal drops back below threshold, so one sustained anomaly
//     produces one dump, not one per tick.
//
// The baseline only learns from non-breach samples: an anomaly cannot poison
// its own yardstick into accepting it as the new normal.

// Detector is one periodic anomaly check.
type Detector interface {
	// Name identifies the detector in dumps and metrics.
	Name() string
	// Eval runs one check and reports whether the detector fired this tick,
	// with a human-readable reason. Called from the monitor loop only; needs
	// no internal locking beyond what its sample functions do.
	Eval() (fired bool, reason string)
}

// Thresholds tunes a baseline detector. The zero value gets workable
// defaults from the constructors.
type Thresholds struct {
	// MinTrigger is the absolute floor: a sample below it is never a breach,
	// whatever the baseline says. This is the noise gate that keeps a quiet
	// system (baseline ~0) from firing on the first nonzero sample of an
	// ordinary workload.
	MinTrigger float64
	// Factor is the baseline multiple a sample must reach to breach
	// (default 4): fire only when the signal is several times its own
	// steady state, not merely above it.
	Factor float64
	// Alpha is the EWMA weight of a new (non-breach) sample, 0 < Alpha <= 1
	// (default 0.25).
	Alpha float64
	// Consecutive is how many ticks in a row must breach before the
	// detector fires (default 2).
	Consecutive int
	// Warmup is how many initial ticks only feed the baseline (default 3),
	// so a detector armed mid-traffic first learns what normal looks like.
	Warmup int
}

func (t *Thresholds) applyDefaults() {
	if t.Factor <= 0 {
		t.Factor = 4
	}
	if t.Alpha <= 0 || t.Alpha > 1 {
		t.Alpha = 0.25
	}
	if t.Consecutive <= 0 {
		t.Consecutive = 2
	}
	if t.Warmup <= 0 {
		t.Warmup = 3
	}
}

// baselineDetector implements the EWMA + hysteresis scheme over a sample
// function; delta mode differentiates a cumulative counter per tick.
type baselineDetector struct {
	name   string
	sample func() float64
	delta  bool
	th     Thresholds

	prev     float64 // last raw sample (delta mode)
	havePrev bool
	baseline float64
	warm     int
	breaches int
	latched  bool
}

// NewGaugeDetector watches a level signal (e.g. max watcher version lag):
// breach when the level is both >= MinTrigger and >= Factor× its EWMA
// baseline.
func NewGaugeDetector(name string, sample func() float64, th Thresholds) Detector {
	th.applyDefaults()
	return &baselineDetector{name: name, sample: sample, th: th}
}

// NewDeltaDetector watches a cumulative counter (e.g. resyncs_total):
// each tick evaluates the counter's increase since the previous tick.
func NewDeltaDetector(name string, sample func() float64, th Thresholds) Detector {
	th.applyDefaults()
	return &baselineDetector{name: name, sample: sample, delta: true, th: th}
}

func (d *baselineDetector) Name() string { return d.name }

func (d *baselineDetector) Eval() (bool, string) {
	v := d.sample()
	if d.delta {
		raw := v
		if d.havePrev {
			v = raw - d.prev
		} else {
			v = 0
		}
		d.prev, d.havePrev = raw, true
	}
	if d.warm < d.th.Warmup {
		d.warm++
		d.baseline += d.th.Alpha * (v - d.baseline)
		return false, ""
	}
	breach := v >= d.th.MinTrigger && v >= d.baseline*d.th.Factor
	if !breach {
		d.breaches = 0
		d.latched = false
		d.baseline += d.th.Alpha * (v - d.baseline)
		return false, ""
	}
	d.breaches++
	if d.breaches >= d.th.Consecutive && !d.latched {
		d.latched = true
		return true, fmt.Sprintf("%s: value %.1f over baseline %.2f for %d ticks (floor %.1f, factor %.1fx)",
			d.name, v, d.baseline, d.breaches, d.th.MinTrigger, d.th.Factor)
	}
	return false, ""
}

// stallDetector fires when work keeps arriving but output stops: the
// delivery-stall shape, where appends advance while deliveries stay flat.
// No baseline needed — "input moves, output doesn't" is anomalous at any
// rate above the MinWork noise gate.
type stallDetector struct {
	name         string
	work, output func() float64
	minWork      float64
	consecutive  int

	prevWork, prevOut float64
	havePrev          bool
	stalls            int
	latched           bool
}

// NewStallDetector watches two cumulative counters; it fires after
// consecutive ticks in which work advanced by >= minWork while output did
// not advance at all.
func NewStallDetector(name string, work, output func() float64, minWork float64, consecutive int) Detector {
	if minWork <= 0 {
		minWork = 1
	}
	if consecutive <= 0 {
		consecutive = 3
	}
	return &stallDetector{name: name, work: work, output: output, minWork: minWork, consecutive: consecutive}
}

func (d *stallDetector) Name() string { return d.name }

func (d *stallDetector) Eval() (bool, string) {
	w, o := d.work(), d.output()
	if !d.havePrev {
		d.prevWork, d.prevOut, d.havePrev = w, o, true
		return false, ""
	}
	dw, do := w-d.prevWork, o-d.prevOut
	d.prevWork, d.prevOut = w, o
	if dw >= d.minWork && do == 0 {
		d.stalls++
	} else {
		d.stalls = 0
		d.latched = false
	}
	if d.stalls >= d.consecutive && !d.latched {
		d.latched = true
		return true, fmt.Sprintf("%s: %.0f units of work over %d ticks with zero output", d.name, dw*float64(d.stalls), d.stalls)
	}
	return false, ""
}

// CounterSample returns a sample function summing the named registry
// counters — the glue between detectors and the subsystems' existing
// instruments, which keeps this package free of core/remote imports.
func CounterSample(reg *metrics.Registry, names ...string) func() float64 {
	reg = reg.Or()
	cs := make([]*metrics.Counter, len(names))
	for i, n := range names {
		cs[i] = reg.Counter(n)
	}
	return func() float64 {
		var sum int64
		for _, c := range cs {
			sum += c.Value()
		}
		return float64(sum)
	}
}

// GaugeSample returns a sample function reading the named gauge (stored or
// function-backed) from the registry; missing gauges read as 0.
func GaugeSample(reg *metrics.Registry, name string) func() float64 {
	reg = reg.Or()
	return func() float64 {
		v, _ := reg.GaugeValue(name)
		return float64(v)
	}
}

// StandardDetectors builds the watch stack's six stock detectors against
// the given registry, keyed entirely off instrument names so the wiring
// works for any combination of hub, remote, and pubsub components
// registered there:
//
//   - watcher-lag-spike: the lag radar's max version lag jumps far above
//     its steady state;
//   - resync-burst: resyncs (the contract's explicit "you diverged"
//     signal) arrive in a burst;
//   - overflow-burst: watcher-buffer and remote-outbox overflows cluster —
//     the §3.1 failure shape, caught as it happens;
//   - heartbeat-gap: either transport side saw a silent peer (any miss is
//     anomalous, so the floor is 1 and the baseline factor irrelevant);
//   - delivery-stall: ingest advances while deliveries stay flat;
//   - memory-pressure: the governor escalated past eviction into shedding
//     or admission control (pressure level ≥ 2 = Shed) — the black box
//     should capture the storm that pushed it there, not just the gauges
//     after the fact.
func StandardDetectors(reg *metrics.Registry) []Detector {
	reg = reg.Or()
	return []Detector{
		NewGaugeDetector("watcher-lag-spike",
			GaugeSample(reg, "core_hub_watcher_version_lag_max"),
			Thresholds{MinTrigger: 1024, Factor: 8}),
		NewDeltaDetector("resync-burst",
			CounterSample(reg, "core_hub_resyncs_total"),
			Thresholds{MinTrigger: 3, Factor: 4}),
		NewDeltaDetector("overflow-burst",
			CounterSample(reg,
				"core_hub_append_overflow_total",
				"core_hub_progress_overflow_total",
				"core_hub_replay_overflow_total",
				"remote_server_overflow_resyncs_total"),
			Thresholds{MinTrigger: 3, Factor: 4}),
		NewDeltaDetector("heartbeat-gap",
			CounterSample(reg,
				"remote_client_heartbeat_misses_total",
				"remote_server_heartbeat_misses_total"),
			Thresholds{MinTrigger: 1, Factor: 1, Consecutive: 1}),
		NewStallDetector("delivery-stall",
			CounterSample(reg, "core_hub_appends_total"),
			CounterSample(reg, "core_hub_delivered_total"),
			1, 3),
		NewGaugeDetector("memory-pressure",
			GaugeSample(reg, "govern_pressure_level"),
			Thresholds{MinTrigger: 2, Factor: 1, Consecutive: 1}),
	}
}

// MonitorConfig tunes a Monitor.
type MonitorConfig struct {
	// Interval between detector evaluations (default 1s).
	Interval time.Duration
	// Clock drives the tick loop; nil uses the real clock. Tests inject
	// clockwork.NewFake() and call Tick directly for determinism.
	Clock clockwork.Clock
	// Detectors to evaluate each tick (typically StandardDetectors plus any
	// deployment-specific ones).
	Detectors []Detector
	// OnTrigger is called, from the monitor goroutine, for each detector
	// firing — usually a Capturer.Trigger.
	OnTrigger func(detector, reason string)
	// Metrics receives flightrec_detector_fires_total; nil uses
	// metrics.Default().
	Metrics *metrics.Registry
}

// Monitor evaluates a detector set on clock ticks. Detectors are stateful
// and unsynchronized; Tick serializes them under the monitor's mutex, so
// tests may call Tick while a Start loop idles on a fake clock.
type Monitor struct {
	cfg   MonitorConfig
	clock clockwork.Clock
	fires *metrics.Counter

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewMonitor creates a Monitor; call Start for the background loop or Tick
// directly for deterministic evaluation.
func NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	clock := cfg.Clock
	if clock == nil {
		clock = clockwork.Real()
	}
	return &Monitor{
		cfg:   cfg,
		clock: clock,
		fires: cfg.Metrics.Or().Counter("flightrec_detector_fires_total"),
	}
}

// Tick evaluates every detector once, invoking OnTrigger for each firing.
func (m *Monitor) Tick() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.cfg.Detectors {
		fired, reason := d.Eval()
		if !fired {
			continue
		}
		m.fires.Inc()
		if m.cfg.OnTrigger != nil {
			m.cfg.OnTrigger(d.Name(), reason)
		}
	}
}

// Start launches the tick loop. Stop ends it; Start after Stop restarts.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	m.stop, m.done = stop, done
	go func() {
		defer close(done)
		t := m.clock.NewTicker(m.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C():
				m.Tick()
			}
		}
	}()
}

// Stop halts the tick loop and waits for it to exit.
func (m *Monitor) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
