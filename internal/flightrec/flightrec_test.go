package flightrec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/metrics"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Record(KindWatcherAdd, Event{ID: 1}) // must not panic
	if got := r.Tail(10); got != nil {
		t.Fatalf("nil recorder Tail = %v, want nil", got)
	}
	if r.Len() != 0 || r.Recorded() != 0 {
		t.Fatal("nil recorder reports contents")
	}
}

func TestRecorderTailOrderedAndBounded(t *testing.T) {
	reg := metrics.NewRegistry()
	r := New(Config{Shards: 3, PerShard: 8, Metrics: reg})
	const writes = 100
	for i := 0; i < writes; i++ {
		r.Record(KindSegmentSeal, Event{Comp: "core.hub", N: int64(i)})
	}
	if r.Recorded() != writes {
		t.Fatalf("Recorded = %d, want %d", r.Recorded(), writes)
	}
	if r.Len() != 3*8 {
		t.Fatalf("Len = %d, want full rings %d", r.Len(), 3*8)
	}
	tail := r.Tail(0)
	if len(tail) != 3*8 {
		t.Fatalf("Tail(0) = %d records, want %d", len(tail), 3*8)
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq <= tail[i-1].Seq {
			t.Fatalf("tail not ascending at %d: %d then %d", i, tail[i-1].Seq, tail[i].Seq)
		}
	}
	// The last record written must be the last in the tail.
	if last := tail[len(tail)-1]; last.Seq != writes || last.N != writes-1 {
		t.Fatalf("last tail record seq=%d n=%d, want seq=%d n=%d", last.Seq, last.N, writes, writes-1)
	}
	if got := r.Tail(5); len(got) != 5 || got[4].Seq != writes {
		t.Fatalf("Tail(5) = %d records ending seq %d", len(got), got[len(got)-1].Seq)
	}
	if v := reg.Counter("flightrec_records_total").Value(); v != writes {
		t.Fatalf("flightrec_records_total = %d, want %d", v, writes)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := New(Config{Metrics: metrics.NewRegistry()})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(KindWatcherAdd, Event{ID: int64(g)})
			}
		}(g)
	}
	wg.Wait()
	if r.Recorded() != 8*200 {
		t.Fatalf("Recorded = %d, want %d", r.Recorded(), 8*200)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for k := KindUnknown; k <= KindRangeMove; k++ {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("kind %d round-tripped to %d via %q", k, back, b)
		}
	}
}

// tickerGauge drives a gauge detector through a synthetic anomaly.
func TestGaugeDetectorFiresOnSpikeAndLatches(t *testing.T) {
	v := 10.0
	d := NewGaugeDetector("lag", func() float64 { return v }, Thresholds{MinTrigger: 1024, Factor: 8})
	// Warmup + steady state: never fires.
	for i := 0; i < 20; i++ {
		if fired, _ := d.Eval(); fired {
			t.Fatalf("fired on steady state at tick %d", i)
		}
	}
	// Spike: above floor and far above baseline. Fires on the 2nd
	// consecutive breach (default Consecutive=2), then stays latched.
	v = 5000
	if fired, _ := d.Eval(); fired {
		t.Fatal("fired on first breach tick, want persistence of 2")
	}
	fired, reason := d.Eval()
	if !fired {
		t.Fatal("did not fire on second consecutive breach")
	}
	if reason == "" {
		t.Fatal("fired with empty reason")
	}
	for i := 0; i < 10; i++ {
		if fired, _ := d.Eval(); fired {
			t.Fatal("refired while latched")
		}
	}
	// Recovery unlatches; a new spike fires again.
	v = 10
	d.Eval()
	v = 5000
	d.Eval()
	if fired, _ := d.Eval(); !fired {
		t.Fatal("did not refire after recovery")
	}
}

func TestDeltaDetectorFiresOnBurstNotOnSteadyRate(t *testing.T) {
	var total float64
	d := NewDeltaDetector("resyncs", func() float64 { return total }, Thresholds{MinTrigger: 3, Factor: 4})
	// A steady trickle: one resync every other tick, forever. The baseline
	// learns it; the floor and factor keep it silent.
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			total++
		}
		if fired, _ := d.Eval(); fired {
			t.Fatalf("fired on steady trickle at tick %d", i)
		}
	}
	// Burst: 50 resyncs in one tick, sustained one more tick.
	total += 50
	d.Eval()
	total += 50
	if fired, _ := d.Eval(); !fired {
		t.Fatal("did not fire on resync burst")
	}
}

func TestStallDetectorFiresWhenOutputStops(t *testing.T) {
	var work, out float64
	d := NewStallDetector("stall", func() float64 { return work }, func() float64 { return out }, 1, 3)
	// Healthy: both advance.
	for i := 0; i < 10; i++ {
		work += 100
		out += 100
		if fired, _ := d.Eval(); fired {
			t.Fatal("fired while healthy")
		}
	}
	// Work continues, output flatlines: fires after 3 consecutive ticks.
	for i := 0; i < 2; i++ {
		work += 100
		if fired, _ := d.Eval(); fired {
			t.Fatalf("fired after only %d stalled ticks", i+1)
		}
	}
	work += 100
	if fired, _ := d.Eval(); !fired {
		t.Fatal("did not fire after 3 stalled ticks")
	}
	work += 100
	if fired, _ := d.Eval(); fired {
		t.Fatal("refired while latched")
	}
	// Output resumes, then stalls again: refires.
	work += 100
	out += 1
	d.Eval()
	for i := 0; i < 3; i++ {
		work += 100
		d.Eval()
	}
	work += 100
	if fired, _ := d.Eval(); fired {
		t.Fatal("stall refire accounting broken: latched fire should have happened a tick earlier")
	}
}

func TestHeartbeatDetectorFiresOnSingleMiss(t *testing.T) {
	reg := metrics.NewRegistry()
	misses := reg.Counter("remote_client_heartbeat_misses_total")
	d := NewDeltaDetector("heartbeat-gap",
		CounterSample(reg, "remote_client_heartbeat_misses_total", "remote_server_heartbeat_misses_total"),
		Thresholds{MinTrigger: 1, Factor: 1, Consecutive: 1})
	// Warmup (3 ticks) then quiet.
	for i := 0; i < 10; i++ {
		if fired, _ := d.Eval(); fired {
			t.Fatalf("fired with no misses at tick %d", i)
		}
	}
	misses.Inc()
	if fired, _ := d.Eval(); !fired {
		t.Fatal("did not fire on a single heartbeat miss")
	}
}

// TestStandardDetectorsQuietSteadyState simulates ten minutes of healthy
// 1s-tick operation — constant append/delivery traffic, an occasional
// isolated resync, bounded watcher lag — and requires that no stock
// detector ever fires.
func TestStandardDetectorsQuietSteadyState(t *testing.T) {
	reg := metrics.NewRegistry()
	appends := reg.Counter("core_hub_appends_total")
	delivered := reg.Counter("core_hub_delivered_total")
	resyncs := reg.Counter("core_hub_resyncs_total")
	lag := reg.Gauge("core_hub_watcher_version_lag_max")

	clock := clockwork.NewFake()
	var fires []string
	mon := NewMonitor(MonitorConfig{
		Interval:  time.Second,
		Clock:     clock,
		Detectors: StandardDetectors(reg),
		OnTrigger: func(name, reason string) { fires = append(fires, name+": "+reason) },
		Metrics:   reg,
	})
	for i := 0; i < 600; i++ { // 10 simulated minutes
		appends.Add(1000)
		delivered.Add(8000)
		lag.Set(int64(100 + i%50)) // jittering but bounded lag
		if i%60 == 30 {
			resyncs.Inc() // one isolated resync a minute
		}
		mon.Tick()
	}
	if len(fires) != 0 {
		t.Fatalf("detectors fired on steady state: %v", fires)
	}
	if v := reg.Counter("flightrec_detector_fires_total").Value(); v != 0 {
		t.Fatalf("flightrec_detector_fires_total = %d, want 0", v)
	}
}

// TestStandardDetectorsFireOnSyntheticAnomalies drives each stock detector
// through its own anomaly shape and requires exactly the right one to fire.
func TestStandardDetectorsFireOnSyntheticAnomalies(t *testing.T) {
	cases := []struct {
		detector string
		anomaly  func(reg *metrics.Registry, tick func())
	}{
		{"watcher-lag-spike", func(reg *metrics.Registry, tick func()) {
			reg.Gauge("core_hub_watcher_version_lag_max").Set(1 << 20)
			tick()
			tick()
		}},
		{"resync-burst", func(reg *metrics.Registry, tick func()) {
			reg.Counter("core_hub_resyncs_total").Add(100)
			tick()
			reg.Counter("core_hub_resyncs_total").Add(100)
			tick()
		}},
		{"overflow-burst", func(reg *metrics.Registry, tick func()) {
			reg.Counter("core_hub_append_overflow_total").Add(40)
			reg.Counter("remote_server_overflow_resyncs_total").Add(10)
			tick()
			reg.Counter("core_hub_append_overflow_total").Add(50)
			tick()
		}},
		{"heartbeat-gap", func(reg *metrics.Registry, tick func()) {
			reg.Counter("remote_server_heartbeat_misses_total").Inc()
			tick()
		}},
		{"delivery-stall", func(reg *metrics.Registry, tick func()) {
			for i := 0; i < 4; i++ {
				reg.Counter("core_hub_appends_total").Add(500)
				tick()
			}
		}},
		{"memory-pressure", func(reg *metrics.Registry, tick func()) {
			// The governor escalated to Shed (level 2): one tick fires.
			reg.Gauge("govern_pressure_level").Set(2)
			tick()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.detector, func(t *testing.T) {
			reg := metrics.NewRegistry()
			var fires []string
			mon := NewMonitor(MonitorConfig{
				Detectors: StandardDetectors(reg),
				OnTrigger: func(name, _ string) { fires = append(fires, name) },
				Metrics:   reg,
			})
			// Settle every detector into a healthy baseline first.
			for i := 0; i < 10; i++ {
				reg.Counter("core_hub_appends_total").Add(100)
				reg.Counter("core_hub_delivered_total").Add(100)
				mon.Tick()
			}
			tc.anomaly(reg, func() {
				// The healthy background continues during the anomaly except
				// for delivery-stall, whose anomaly is that delivery stops.
				if tc.detector != "delivery-stall" {
					reg.Counter("core_hub_appends_total").Add(100)
					reg.Counter("core_hub_delivered_total").Add(100)
				}
				mon.Tick()
			})
			found := false
			for _, f := range fires {
				if f == tc.detector {
					found = true
				} else {
					t.Errorf("unexpected detector %q fired", f)
				}
			}
			if !found {
				t.Fatalf("detector %q did not fire on its anomaly", tc.detector)
			}
		})
	}
}

func TestMonitorRunsOnFakeClockTicks(t *testing.T) {
	reg := metrics.NewRegistry()
	clock := clockwork.NewFake()
	misses := reg.Counter("remote_client_heartbeat_misses_total")
	fired := make(chan string, 8)
	mon := NewMonitor(MonitorConfig{
		Interval:  time.Second,
		Clock:     clock,
		Detectors: StandardDetectors(reg),
		OnTrigger: func(name, _ string) { fired <- name },
		Metrics:   reg,
	})
	mon.Start()
	defer mon.Stop()
	// The fake ticker drops coalesced ticks (capacity-1 channel), so pace
	// the advances against the monitor goroutine: a miss lands before every
	// tick, and any tick consumed after warmup sees the nonzero delta.
	deadline := time.After(10 * time.Second)
	for {
		misses.Inc()
		clock.Advance(time.Second)
		select {
		case name := <-fired:
			if name != "heartbeat-gap" {
				t.Fatalf("fired %q, want heartbeat-gap", name)
			}
			return
		case <-deadline:
			t.Fatal("monitor did not fire within real-time budget")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestCapturerAssemblesDump(t *testing.T) {
	reg := metrics.NewRegistry()
	clock := clockwork.NewFake()
	rec := New(Config{Clock: clock, Metrics: reg})
	dir := t.TempDir()
	c := NewCapturer(CaptureConfig{
		Recorder: rec,
		Metrics:  reg,
		Lags:     func() any { return []string{"w1", "w2"} },
		Dir:      dir,
		Clock:    clock,
	})
	reg.Counter("core_hub_resyncs_total").Add(7)
	rec.Record(KindWatcherLagOut, Event{Comp: "core.hub", ID: 42, Detail: "buffer overflow"})

	d := c.Trigger("resync-burst", "test reason")
	if d == nil {
		t.Fatal("first trigger returned nil")
	}
	if d.ID != 1 || d.Detector != "resync-burst" || d.Reason != "test reason" {
		t.Fatalf("dump header = %+v", d)
	}
	if len(d.Records) != 1 || d.Records[0].Kind != KindWatcherLagOut || d.Records[0].ID != 42 {
		t.Fatalf("dump records = %+v", d.Records)
	}
	if d.CounterDelta["core_hub_resyncs_total"] != 7 {
		t.Fatalf("counter delta = %v", d.CounterDelta)
	}
	if d.Metrics.Counters["core_hub_resyncs_total"] != 7 {
		t.Fatal("metrics snapshot missing")
	}
	if d.File == "" {
		t.Fatal("dump not written to disk")
	}
	// The on-disk JSON decodes back with named kinds.
	b, err := os.ReadFile(d.File)
	if err != nil {
		t.Fatal(err)
	}
	var back Dump
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("dump file does not decode: %v", err)
	}
	if back.Records[0].Kind != KindWatcherLagOut {
		t.Fatalf("kind did not round-trip through disk: %v", back.Records[0].Kind)
	}
	if filepath.Dir(d.File) != dir {
		t.Fatalf("dump written outside Dir: %s", d.File)
	}

	// Storm guard: a second trigger within MinInterval is dropped...
	if got := c.Trigger("resync-burst", "again"); got != nil {
		t.Fatal("storm guard did not drop a back-to-back trigger")
	}
	// ...but one after the interval captures, with a delta relative to the
	// previous capture, not to process start.
	clock.Advance(2 * time.Second)
	reg.Counter("core_hub_resyncs_total").Add(3)
	d2 := c.Trigger("resync-burst", "later")
	if d2 == nil {
		t.Fatal("post-interval trigger dropped")
	}
	if d2.CounterDelta["core_hub_resyncs_total"] != 3 {
		t.Fatalf("second delta = %v, want 3", d2.CounterDelta)
	}
	if got, ok := c.Dump(1); !ok || got.ID != 1 {
		t.Fatal("Dump(1) lookup failed")
	}
	if _, ok := c.Dump(99); ok {
		t.Fatal("Dump(99) found a ghost")
	}
	if ds := c.Dumps(); len(ds) != 2 {
		t.Fatalf("Dumps = %d, want 2", len(ds))
	}
}

func TestCapturerBoundsRetainedDumps(t *testing.T) {
	clock := clockwork.NewFake()
	reg := metrics.NewRegistry()
	c := NewCapturer(CaptureConfig{Metrics: reg, MaxDumps: 3, MinInterval: time.Millisecond, Clock: clock})
	for i := 0; i < 10; i++ {
		clock.Advance(time.Second)
		if d := c.Trigger("d", fmt.Sprintf("r%d", i)); d == nil {
			t.Fatalf("trigger %d dropped", i)
		}
	}
	ds := c.Dumps()
	if len(ds) != 3 {
		t.Fatalf("retained %d dumps, want 3", len(ds))
	}
	if ds[0].ID != 8 || ds[2].ID != 10 {
		t.Fatalf("retained ids %d..%d, want 8..10", ds[0].ID, ds[2].ID)
	}
}

func TestStackWiresTriggerToCapture(t *testing.T) {
	reg := metrics.NewRegistry()
	clock := clockwork.NewFake()
	st := NewStack(StackConfig{Metrics: reg, Clock: clock})
	st.Rec.Record(KindRemoteDisconnect, Event{Comp: "remote.client", ID: 1, Detail: "connection reset"})
	// Settle, then a heartbeat miss: the monitor must capture a dump that
	// contains the disconnect record.
	for i := 0; i < 5; i++ {
		st.Mon.Tick()
	}
	reg.Counter("remote_client_heartbeat_misses_total").Inc()
	clock.Advance(time.Second) // storm-guard headroom for the capture instant
	st.Mon.Tick()
	ds := st.Cap.Dumps()
	if len(ds) != 1 {
		t.Fatalf("stack captured %d dumps, want 1", len(ds))
	}
	if ds[0].Detector != "heartbeat-gap" {
		t.Fatalf("dump detector = %q", ds[0].Detector)
	}
	found := false
	for _, r := range ds[0].Records {
		if r.Kind == KindRemoteDisconnect && r.ID == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("dump timeline missing the disconnect record")
	}
}
