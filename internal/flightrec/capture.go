package flightrec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"unbundle/internal/clockwork"
	"unbundle/internal/metrics"
	"unbundle/internal/trace"
)

// The capture layer is what makes the flight recorder a black box rather
// than another metric: when a detector fires, Trigger freezes everything an
// operator would wish they had scraped one minute earlier — the recorder's
// recent timeline, the completed causal traces, the full metrics snapshot
// plus the counter deltas since the previous capture, the watcher-lag
// table, and optionally a goroutine profile — into one self-contained Dump.
// Assembly runs under one mutex, so the pieces of a dump are mutually
// consistent to within the component-level atomicity of their sources, and
// two detectors firing together produce two coherent dumps, not an
// interleaving.

// Dump is one captured black box, JSON-serializable end to end.
type Dump struct {
	// ID numbers dumps within this Capturer, ascending from 1.
	ID int `json:"id"`
	// At is the capture instant.
	At time.Time `json:"at"`
	// Detector and Reason say which anomaly check fired and why.
	Detector string `json:"detector"`
	Reason   string `json:"reason"`
	// Records is the flight-recorder tail: the merged recent timeline.
	Records []Record `json:"records"`
	// Traces are the most recently completed causal traces.
	Traces []trace.Trace `json:"traces,omitempty"`
	// Metrics is the registry snapshot at capture time.
	Metrics metrics.RegistrySnapshot `json:"metrics"`
	// CounterDelta is each counter's increase since the previous capture
	// (or since the Capturer was created) — the burst the scrape interval
	// would have averaged away.
	CounterDelta map[string]int64 `json:"counter_delta,omitempty"`
	// Lags is the hub's WatcherLags table (or whatever the Lags source
	// supplies), captured as-is.
	Lags any `json:"lags,omitempty"`
	// Goroutines is a textual goroutine profile, when enabled.
	Goroutines string `json:"goroutines,omitempty"`
	// File is the on-disk path the dump was written to, when Dir is set.
	File string `json:"file,omitempty"`
}

// CaptureConfig wires a Capturer to its evidence sources. Every source is
// optional; a missing one leaves its dump section empty.
type CaptureConfig struct {
	// Recorder supplies the event timeline.
	Recorder *Recorder
	// Tracer supplies recently completed causal traces.
	Tracer *trace.Tracer
	// Metrics supplies the snapshot and counter deltas; nil uses
	// metrics.Default().
	Metrics *metrics.Registry
	// Lags supplies the watcher-lag table; typically a closure over
	// Hub.WatcherLags. The result must be JSON-marshalable.
	Lags func() any
	// TailRecords bounds the records section (default 512).
	TailRecords int
	// MaxDumps bounds the in-memory dump ring (default 8, oldest evicted).
	MaxDumps int
	// MinInterval drops triggers arriving within this span of the previous
	// capture (default 1s) — a storm of detectors firing together yields
	// one dump, and the ring cannot churn through its history in a burst.
	// The first trigger always captures.
	MinInterval time.Duration
	// Goroutines adds a goroutine profile to each dump.
	Goroutines bool
	// Dir, when set, writes each dump to Dir/flightrec-<id>-<detector>.json
	// (best effort; failures are counted, never fatal).
	Dir string
	// Clock stamps dumps; nil uses the real clock.
	Clock clockwork.Clock
}

// Capturer assembles and retains black-box dumps.
type Capturer struct {
	cfg   CaptureConfig
	clock clockwork.Clock

	captured, writeErrs *metrics.Counter

	mu     sync.Mutex
	nextID int
	lastAt time.Time
	dumps  []Dump // oldest first, bounded by MaxDumps
	prev   map[string]int64
}

// NewCapturer creates a Capturer. The counter baseline for the first dump's
// delta section is taken here.
func NewCapturer(cfg CaptureConfig) *Capturer {
	if cfg.TailRecords <= 0 {
		cfg.TailRecords = 512
	}
	if cfg.MaxDumps <= 0 {
		cfg.MaxDumps = 8
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = clockwork.Real()
	}
	reg := cfg.Metrics.Or()
	cfg.Metrics = reg
	c := &Capturer{
		cfg:       cfg,
		clock:     cfg.Clock,
		captured:  reg.Counter("flightrec_dumps_total"),
		writeErrs: reg.Counter("flightrec_dump_write_errors_total"),
		nextID:    1,
		prev:      reg.Snapshot().Counters,
	}
	return c
}

// Trigger captures a dump for the named detector. It is the natural
// MonitorConfig.OnTrigger target. Returns nil when the trigger was dropped
// by the MinInterval storm guard.
func (c *Capturer) Trigger(detector, reason string) *Dump {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.lastAt.IsZero() && now.Sub(c.lastAt) < c.cfg.MinInterval {
		return nil
	}
	c.lastAt = now

	snap := c.cfg.Metrics.Snapshot()
	delta := make(map[string]int64, len(snap.Counters))
	for n, v := range snap.Counters {
		if d := v - c.prev[n]; d != 0 {
			delta[n] = d
		}
	}
	c.prev = snap.Counters

	d := Dump{
		ID:           c.nextID,
		At:           now,
		Detector:     detector,
		Reason:       reason,
		Records:      c.cfg.Recorder.Tail(c.cfg.TailRecords),
		Traces:       c.cfg.Tracer.Completed(),
		Metrics:      snap,
		CounterDelta: delta,
	}
	c.nextID++
	if c.cfg.Lags != nil {
		d.Lags = c.cfg.Lags()
	}
	if c.cfg.Goroutines {
		var buf bytes.Buffer
		if p := pprof.Lookup("goroutine"); p != nil {
			p.WriteTo(&buf, 1)
		}
		d.Goroutines = buf.String()
	}
	if c.cfg.Dir != "" {
		d.File = filepath.Join(c.cfg.Dir, fmt.Sprintf("flightrec-%d-%s.json", d.ID, detector))
		if b, err := json.MarshalIndent(&d, "", "  "); err != nil {
			c.writeErrs.Inc()
			d.File = ""
		} else if err := os.WriteFile(d.File, b, 0o644); err != nil {
			c.writeErrs.Inc()
			d.File = ""
		}
	}

	c.dumps = append(c.dumps, d)
	if len(c.dumps) > c.cfg.MaxDumps {
		c.dumps = append(c.dumps[:0], c.dumps[len(c.dumps)-c.cfg.MaxDumps:]...)
	}
	c.captured.Inc()
	out := d
	return &out
}

// Dumps returns the retained dumps, oldest first. The slice is a copy; the
// dumps share their (immutable once captured) section slices.
func (c *Capturer) Dumps() []Dump {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Dump, len(c.dumps))
	copy(out, c.dumps)
	return out
}

// Dump returns the dump with the given ID, if still retained.
func (c *Capturer) Dump(id int) (Dump, bool) {
	if c == nil {
		return Dump{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.dumps {
		if d.ID == id {
			return d, true
		}
	}
	return Dump{}, false
}

// Stack bundles the three layers for callers (CLIs, experiments) that want
// the standard wiring in one call: an always-on recorder, the stock
// detector set against the shared registry, and a capturer the monitor
// triggers.
type Stack struct {
	Rec *Recorder
	Mon *Monitor
	Cap *Capturer
}

// StackConfig configures NewStack.
type StackConfig struct {
	// Metrics is the registry shared with the components being observed
	// (the detectors sample it; the capturer snapshots it); nil uses
	// metrics.Default().
	Metrics *metrics.Registry
	// Tracer, Lags, Goroutines, Dir: capture sources, as in CaptureConfig.
	Tracer     *trace.Tracer
	Lags       func() any
	Goroutines bool
	Dir        string
	// Interval is the detector evaluation period (default 1s).
	Interval time.Duration
	// Clock drives detection and stamps records/dumps; nil = real clock.
	Clock clockwork.Clock
}

// NewStack wires recorder → standard detectors → capturer. Call
// Stack.Mon.Start to begin detection, Stack.Mon.Stop to end it.
func NewStack(cfg StackConfig) *Stack {
	rec := New(Config{Clock: cfg.Clock, Metrics: cfg.Metrics})
	capt := NewCapturer(CaptureConfig{
		Recorder:   rec,
		Tracer:     cfg.Tracer,
		Metrics:    cfg.Metrics,
		Lags:       cfg.Lags,
		Goroutines: cfg.Goroutines,
		Dir:        cfg.Dir,
		Clock:      cfg.Clock,
	})
	mon := NewMonitor(MonitorConfig{
		Interval:  cfg.Interval,
		Clock:     cfg.Clock,
		Detectors: StandardDetectors(cfg.Metrics),
		OnTrigger: func(name, reason string) { capt.Trigger(name, reason) },
		Metrics:   cfg.Metrics,
	})
	return &Stack{Rec: rec, Mon: mon, Cap: capt}
}
