// Package flightrec is the watch stack's black box: an always-on,
// fixed-memory flight recorder plus anomaly detectors that capture a
// self-contained dump the moment something goes wrong.
//
// The paper's core indictment of pubsub is that its failures are silent —
// retention GC loss and consumer lag surface only as downstream damage
// discovered much later (§3.1). The watch contract makes divergence
// *detectable* (progress, resync), but detection is only useful if the
// system records what happened around the moment of divergence: by the time
// anyone scrapes /metrics, the burst that mattered is gone. The flight
// recorder keeps the recent past — every rare-but-significant lifecycle
// event, typed and timestamped — in bounded memory at all times, so an
// anomaly trigger can freeze a coherent timeline instead of an aggregate.
//
// Three layers, mirroring an aircraft recorder:
//
//  1. Recording (this file): per-shard mutex-guarded rings of typed Records.
//     Producers call Record at existing lifecycle hook points — watcher
//     add/remove/lag-out, segment seal/retire, remote connect/disconnect/
//     heartbeat-miss/reconnect/resume/drain, pubsub GC drops and DLQ
//     routing, sharder range moves. These are rare events (never per-append,
//     never per-delivery), so a short critical section per record is cheap;
//     a nil *Recorder costs one branch, the same discipline as trace.Tracer.
//  2. Detection (detect.go): detectors evaluated on clockwork ticks against
//     EWMA baselines, with hysteresis so steady-state noise never fires.
//  3. Capture (capture.go): on trigger, atomically assemble a dump — the
//     recorder tail, recently completed traces, a metrics snapshot delta,
//     the watcher-lag table, optionally a goroutine profile.
package flightrec

import (
	"sort"
	"sync"
	"sync/atomic"

	"unbundle/internal/clockwork"
	"unbundle/internal/metrics"
	"unbundle/internal/trace"
)

// Kind types a recorded event. The set covers the lifecycle transitions of
// every subsystem in the watch stack; per-event data paths (appends,
// deliveries) are deliberately absent — those are what metrics and sampled
// traces are for.
type Kind uint8

const (
	KindUnknown Kind = iota

	// Hub watcher lifecycle.
	KindWatcherAdd    // watch registered (ID = watcher id)
	KindWatcherRemove // watch cancelled
	KindWatcherLagOut // watcher cut over to resync (Detail = reason)
	KindHubWipe       // hub soft state discarded, every watcher resynced

	// Hub retention window.
	KindSegmentSeal   // active tail sealed (N = events, Version = maxVer)
	KindSegmentRetire // fully-trimmed segment dropped (N = events evicted through it)

	// Remote transport, server side.
	KindRemoteConnect    // server accepted a connection (ID = conn id)
	KindRemoteDisconnect // connection died (Detail = cause)
	KindRemoteOverflow   // server outbox overflow, watches resynced (N = watches)
	KindRemoteDrain      // graceful drain began

	// Remote transport, client side (and heartbeat loss on either side).
	KindHeartbeatMiss   // read deadline expired with no frame: peer silent
	KindRemoteReconnect // client re-established a session (ID = generation)
	KindRemoteResume    // one watch re-requested after reconnect (ID = watch id, Version = resume point)

	// Pubsub baseline.
	KindGCDrop   // retention GC discarded unconsumed messages (N = messages)
	KindDLQRoute // message dead-lettered to a DLQ topic
	KindNackDrop // message dropped after max nacks with no DLQ configured

	// Auto-sharder.
	KindRangeMove // key range reassigned to another pod

	// Memory governor.
	KindMemoryPressure // pressure level rose, or a watcher was shed+quarantined (N = used bytes / strikes)
)

var kindNames = [...]string{
	KindUnknown:          "unknown",
	KindWatcherAdd:       "watcher-add",
	KindWatcherRemove:    "watcher-remove",
	KindWatcherLagOut:    "watcher-lag-out",
	KindHubWipe:          "hub-wipe",
	KindSegmentSeal:      "segment-seal",
	KindSegmentRetire:    "segment-retire",
	KindRemoteConnect:    "remote-connect",
	KindRemoteDisconnect: "remote-disconnect",
	KindRemoteOverflow:   "remote-overflow",
	KindRemoteDrain:      "remote-drain",
	KindHeartbeatMiss:    "heartbeat-miss",
	KindRemoteReconnect:  "remote-reconnect",
	KindRemoteResume:     "remote-resume",
	KindGCDrop:           "gc-drop",
	KindDLQRoute:         "dlq-route",
	KindNackDrop:         "nack-drop",
	KindRangeMove:        "range-move",
	KindMemoryPressure:   "memory-pressure",
}

// String returns the kind's wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// MarshalText renders the kind as its name, so dumps read as timelines
// rather than enums.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name (the e2e tests decode dumps back).
func (k *Kind) UnmarshalText(b []byte) error {
	s := string(b)
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	*k = KindUnknown
	return nil
}

// Event is the caller-supplied payload of one record. All fields are
// optional; fill what the hook point knows.
type Event struct {
	// Comp names the component that recorded the event ("core.hub",
	// "remote.server", "remote.client", "pubsub.broker", "sharder").
	Comp string `json:"comp,omitempty"`
	// ID correlates records about one entity: watcher id, connection id,
	// client session generation — whatever identity the component tracks.
	ID int64 `json:"id,omitempty"`
	// Version is the event's position in version space, when it has one
	// (resume point, sealed segment's max version).
	Version uint64 `json:"version,omitempty"`
	// Trace carries a causal trace ID when the hook point has one in hand,
	// correlating the record with the sampled per-event traces in a dump.
	Trace trace.ID `json:"trace,omitempty"`
	// N is a magnitude: events evicted, watches resumed, messages dropped.
	N int64 `json:"n,omitempty"`
	// Detail is a short human-readable cause ("watcher buffer overflow",
	// "read tcp ...: connection reset").
	Detail string `json:"detail,omitempty"`
}

// Record is one flight-recorder entry: a typed Event plus its global
// sequence number and timestamp. Seq is a total order across every shard
// ring — merging shards by Seq reconstructs the system-wide timeline.
type Record struct {
	Seq  uint64 `json:"seq"`
	At   int64  `json:"at_ns"`
	Kind Kind   `json:"kind"`
	Event
}

// Config tunes a Recorder's footprint.
type Config struct {
	// Shards is the ring count; records are spread round-robin so concurrent
	// recorders rarely contend on one mutex. Default 4.
	Shards int
	// PerShard is each ring's capacity in records. Total memory is
	// Shards×PerShard×sizeof(Record), fixed at construction. Default 512.
	PerShard int
	// Clock stamps records; nil uses the real clock.
	Clock clockwork.Clock
	// Metrics receives flightrec_records_total; nil uses metrics.Default().
	Metrics *metrics.Registry
}

// Recorder is the always-on recording layer: a fixed set of fixed-size
// record rings. All methods are nil-receiver-safe, so every subsystem holds
// a possibly-nil *Recorder and calls it unconditionally — the disabled
// configuration costs one branch per (already rare) lifecycle event.
type Recorder struct {
	clock    clockwork.Clock
	seq      atomic.Uint64
	shards   []recShard
	recorded *metrics.Counter
}

// recShard is one ring. n counts total writes; the live window is the last
// min(n, len(buf)) records at positions [n-window, n) mod len(buf).
type recShard struct {
	mu  sync.Mutex
	buf []Record
	n   uint64
}

// New creates a Recorder.
func New(cfg Config) *Recorder {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.PerShard <= 0 {
		cfg.PerShard = 512
	}
	if cfg.Clock == nil {
		cfg.Clock = clockwork.Real()
	}
	r := &Recorder{
		clock:    cfg.Clock,
		shards:   make([]recShard, cfg.Shards),
		recorded: cfg.Metrics.Or().Counter("flightrec_records_total"),
	}
	for i := range r.shards {
		r.shards[i].buf = make([]Record, cfg.PerShard)
	}
	return r
}

// Enabled reports whether records go anywhere.
func (r *Recorder) Enabled() bool { return r != nil }

// Record appends one event to the flight recorder. Safe for concurrent use;
// a no-op on a nil receiver.
func (r *Recorder) Record(k Kind, e Event) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1)
	at := r.clock.Now().UnixNano()
	s := &r.shards[seq%uint64(len(r.shards))]
	s.mu.Lock()
	s.buf[s.n%uint64(len(s.buf))] = Record{Seq: seq, At: at, Kind: k, Event: e}
	s.n++
	s.mu.Unlock()
	r.recorded.Inc()
}

// Tail returns up to n of the most recent records, ascending by sequence
// number — the merged timeline across every shard ring. n <= 0 returns the
// whole live window. The slice is a copy.
func (r *Recorder) Tail(n int) []Record {
	if r == nil {
		return nil
	}
	var out []Record
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		window := s.n
		if window > uint64(len(s.buf)) {
			window = uint64(len(s.buf))
		}
		for j := s.n - window; j < s.n; j++ {
			out = append(out, s.buf[j%uint64(len(s.buf))])
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Len returns how many records are currently held across the rings.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	total := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		window := s.n
		if window > uint64(len(s.buf)) {
			window = uint64(len(s.buf))
		}
		total += int(window)
		s.mu.Unlock()
	}
	return total
}

// Recorded returns the total number of records ever written (including ones
// the rings have since overwritten).
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}
