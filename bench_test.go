// Benchmarks: one testing.B target per reproduced figure/claim (the E1–E11
// index in DESIGN.md), each running the corresponding experiment driver and
// failing if any of its shape checks fail — so `go test -bench=.` both times
// and re-verifies the whole reproduction — plus microbenchmarks of the
// public API's hot paths.
package unbundle_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"unbundle"
	"unbundle/internal/experiments"
)

// reportQuantiles attaches a registry histogram's p50/p99 to the benchmark
// output, so `go test -bench` prints per-op latency quantiles (not just the
// mean ns/op) for any instrumented subsystem.
func reportQuantiles(b *testing.B, reg *unbundle.MetricsRegistry, hist, unit string) {
	b.Helper()
	snap := reg.Snapshot()
	h, ok := snap.Histograms[hist]
	if !ok || h.Count == 0 {
		return
	}
	b.ReportMetric(float64(h.P50), "p50-"+unit)
	b.ReportMetric(float64(h.P99), "p99-"+unit)
}

// reportCounters attaches registry counters to the benchmark output under
// "ctr-<name>" units; cmd/benchjson collects those into the Counters map of
// the BENCH_hub.json entry, so each timing record carries the behaviour
// totals (delivered, resyncs, overflow drops) it was measured under.
func reportCounters(b *testing.B, reg *unbundle.MetricsRegistry, counters map[string]string) {
	b.Helper()
	snap := reg.Snapshot()
	for name, counter := range counters {
		b.ReportMetric(float64(snap.Counters[counter]), "ctr-"+name)
	}
}

// hubCounters names the hub totals every hub benchmark reports.
var hubCounters = map[string]string{
	"delivered": "core_hub_delivered_total",
	"resyncs":   "core_hub_resyncs_total",
	"overflow":  "core_hub_append_overflow_total",
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		res, err := e.Run(experiments.Options{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if failed := res.Failed(); len(failed) > 0 {
			b.Fatalf("%s: %d checks failed, first: %s — %s", id, len(failed), failed[0].Name, failed[0].Detail)
		}
	}
}

func BenchmarkE1PubsubBaseline(b *testing.B)   { benchExperiment(b, "E1") }
func BenchmarkE2RetentionLoss(b *testing.B)    { benchExperiment(b, "E2") }
func BenchmarkE3CompactionLoss(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4CatchUp(b *testing.B)          { benchExperiment(b, "E4") }
func BenchmarkE5Replication(b *testing.B)      { benchExperiment(b, "E5") }
func BenchmarkE6InvalidationRace(b *testing.B) { benchExperiment(b, "E6") }
func BenchmarkE7IngestFanout(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8WorkQueue(b *testing.B)        { benchExperiment(b, "E8") }
func BenchmarkE9KnowledgeStitch(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkE10Efficiency(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE11Quadrants(b *testing.B)       { benchExperiment(b, "E11") }
func BenchmarkE12RemoteTransport(b *testing.B) { benchExperiment(b, "E12") }

// --- public-API microbenchmarks ---

func BenchmarkStorePut(b *testing.B) {
	store := unbundle.NewStore()
	val := []byte("0123456789abcdef0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Put(unbundle.Key(fmt.Sprintf("key-%06d", i%10000)), val)
	}
}

func BenchmarkStoreSnapshotGet(b *testing.B) {
	store := unbundle.NewStore()
	for i := 0; i < 10000; i++ {
		store.Put(unbundle.Key(fmt.Sprintf("key-%06d", i)), []byte("v"))
	}
	at := store.CurrentVersion()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Get(unbundle.Key(fmt.Sprintf("key-%06d", i%10000)), at)
	}
}

func BenchmarkStoreTxnCommit(b *testing.B) {
	store := unbundle.NewStore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Commit(func(tx *unbundle.Tx) error {
			tx.Put(unbundle.Key(fmt.Sprintf("a-%04d", i%1000)), []byte("1"))
			tx.Put(unbundle.Key(fmt.Sprintf("b-%04d", i%1000)), []byte("2"))
			return nil
		})
	}
}

func BenchmarkHubAppendFanout8(b *testing.B) {
	reg := unbundle.NewMetricsRegistry()
	hub := unbundle.NewHub(unbundle.HubConfig{Retention: 1 << 16, WatcherBuffer: 1 << 20, Metrics: reg})
	defer hub.Close()
	var delivered atomic.Int64
	for w := 0; w < 8; w++ {
		lo := unbundle.Key(fmt.Sprintf("%d", w))
		hi := unbundle.Key(fmt.Sprintf("%d", w+1))
		cancel, err := hub.Watch(unbundle.Range{Low: lo, High: hi}, 0, unbundle.Callbacks{
			Event: func(unbundle.ChangeEvent) { delivered.Add(1) },
		})
		if err != nil {
			b.Fatal(err)
		}
		defer cancel()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Append(unbundle.ChangeEvent{
			Key:     unbundle.Key(fmt.Sprintf("%d-key", i%8)),
			Mut:     unbundle.Mutation{Op: unbundle.OpPut, Value: []byte("v")},
			Version: unbundle.Version(i + 1),
		})
	}
	b.StopTimer()
	reportQuantiles(b, reg, "core_hub_append_latency_ns", "ns")
	reportCounters(b, reg, hubCounters)
}

// BenchmarkHubAppendFanoutSharded is the multi-shard successor of
// BenchmarkHubAppendFanout8 at equal watcher count: keys spread evenly over
// the numeric domain so each of the hub's key-range shards (default
// GOMAXPROCS) carries its own slice of the load, and appends to different
// shards never contend.
func BenchmarkHubAppendFanoutSharded(b *testing.B) {
	reg := unbundle.NewMetricsRegistry()
	hub := unbundle.NewHub(unbundle.HubConfig{Retention: 1 << 16, WatcherBuffer: 1 << 20, Metrics: reg})
	defer hub.Close()
	var delivered atomic.Int64
	keys := make([]unbundle.Key, 8)
	for w := 0; w < 8; w++ {
		lo := unbundle.NumericKey(w * 1000)
		hi := unbundle.NumericKey(w*1000 + 1000)
		keys[w] = unbundle.NumericKey(w*1000 + 500)
		cancel, err := hub.Watch(unbundle.Range{Low: lo, High: hi}, 0, unbundle.Callbacks{
			Event: func(unbundle.ChangeEvent) { delivered.Add(1) },
		})
		if err != nil {
			b.Fatal(err)
		}
		defer cancel()
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var i int
		for pb.Next() {
			i++
			hub.Append(unbundle.ChangeEvent{
				Key:     keys[i%8],
				Mut:     unbundle.Mutation{Op: unbundle.OpPut, Value: []byte("v")},
				Version: unbundle.Version(i + 1),
			})
		}
	})
	b.StopTimer()
	reportQuantiles(b, reg, "core_hub_append_latency_ns", "ns")
	reportCounters(b, reg, hubCounters)
}

// BenchmarkStoreCommitCDCBatch measures the batched commit→CDC→hub path: an
// 8-key transaction reaches the hub as one AppendBatch per commit instead of
// eight Append round-trips.
func BenchmarkStoreCommitCDCBatch(b *testing.B) {
	reg := unbundle.NewMetricsRegistry()
	store := unbundle.NewWatchableStore(unbundle.HubConfig{Retention: 1 << 16, WatcherBuffer: 1 << 20, Metrics: reg})
	defer store.Close()
	var delivered atomic.Int64
	cancel, err := store.Watch(unbundle.FullRange(), 0, unbundle.Callbacks{
		Event: func(unbundle.ChangeEvent) { delivered.Add(1) },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Commit(func(tx *unbundle.Tx) error {
			for k := 0; k < 8; k++ {
				tx.Put(unbundle.Key(fmt.Sprintf("%d-%04d", k, i%1000)), []byte("v"))
			}
			return nil
		})
	}
	b.StopTimer()
	reportQuantiles(b, reg, "core_hub_append_latency_ns", "ns")
	reportCounters(b, reg, hubCounters)
}

func BenchmarkWatchEndToEnd(b *testing.B) {
	// Full pipeline: store commit → CDC → hub → watcher callback.
	reg := unbundle.NewMetricsRegistry()
	store := unbundle.NewWatchableStore(unbundle.HubConfig{Retention: 1 << 16, WatcherBuffer: 1 << 20, Metrics: reg})
	defer store.Close()
	done := make(chan struct{}, 1)
	var want atomic.Int64
	cancel, err := store.Watch(unbundle.FullRange(), 0, unbundle.Callbacks{
		Event: func(ev unbundle.ChangeEvent) {
			if int64(ev.Version) == want.Load() {
				done <- struct{}{}
			}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cancel()
	b.ResetTimer()
	want.Store(int64(b.N))
	for i := 0; i < b.N; i++ {
		store.Put("key", []byte("value"))
	}
	<-done // delivery of the final event bounds the pipeline latency
	b.StopTimer()
	reportQuantiles(b, reg, "core_hub_append_latency_ns", "ns")
	reportCounters(b, reg, hubCounters)
}

func BenchmarkBrokerPublish(b *testing.B) {
	broker := unbundle.NewBroker(unbundle.BrokerConfig{})
	defer broker.Close()
	if err := broker.CreateTopic("t", unbundle.TopicConfig{Partitions: 8}); err != nil {
		b.Fatal(err)
	}
	val := []byte("0123456789abcdef0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		broker.Publish("t", unbundle.Key(fmt.Sprintf("key-%06d", i%10000)), val)
	}
}

func BenchmarkBrokerGroupConsume(b *testing.B) {
	reg := unbundle.NewMetricsRegistry()
	broker := unbundle.NewBroker(unbundle.BrokerConfig{Metrics: reg})
	defer broker.Close()
	broker.CreateTopic("t", unbundle.TopicConfig{Partitions: 8})
	g, err := broker.Group("t", "g", unbundle.GroupConfig{StartAtEarliest: true})
	if err != nil {
		b.Fatal(err)
	}
	c, err := g.Join("m0")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		broker.Publish("t", unbundle.Key(fmt.Sprintf("key-%06d", i%10000)), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg, ok, err := c.Poll()
		if err != nil || !ok {
			b.Fatalf("poll %d: ok=%v err=%v", i, ok, err)
		}
		c.Ack(msg)
	}
	b.StopTimer()
	reportQuantiles(b, reg, "pubsub_deliver_latency_ns", "ns")
}

func BenchmarkKnowledgeStitch(b *testing.B) {
	ks := unbundle.NewKnowledgeSet()
	for i := 0; i < 64; i++ {
		lo := unbundle.Key(fmt.Sprintf("%03d", i*10))
		hi := unbundle.Key(fmt.Sprintf("%03d", i*10+10))
		ks.AddSnapshot(unbundle.Range{Low: lo, High: hi}, unbundle.Version(10+i))
		ks.ExtendTo(unbundle.Range{Low: lo, High: hi}, unbundle.Version(100+i))
	}
	q1 := unbundle.Range{Low: "015", High: "035"}
	q2 := unbundle.Range{Low: "405", High: "425"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ks.StitchVersion(q1, q2)
	}
}

func BenchmarkSharderOwner(b *testing.B) {
	shd := unbundle.NewSharder(unbundle.SharderConfig{InitialShards: 64}, "p0", "p1", "p2", "p3")
	defer shd.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shd.Owner(unbundle.Key(fmt.Sprintf("%012d", i%64000)))
	}
}
