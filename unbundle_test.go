package unbundle_test

import (
	"fmt"
	"testing"
	"time"

	"unbundle"
)

// TestPublicAPIEndToEnd drives the whole public surface the way the README
// documents it: store, transactions, views, snapshot-then-watch, knowledge,
// broker, sharder.
func TestPublicAPIEndToEnd(t *testing.T) {
	store := unbundle.NewWatchableStore(unbundle.HubConfig{})
	defer store.Close()

	// Writes and a transaction.
	store.Put("account/alice", []byte("100"))
	if _, err := store.Commit(func(tx *unbundle.Tx) error {
		tx.Put("account/alice", []byte("80"))
		tx.Put("account/bob", []byte("70"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Snapshot.
	accounts := unbundle.PrefixRange("account/")
	entries, at, err := store.SnapshotRange(accounts)
	if err != nil || len(entries) != 2 {
		t.Fatalf("snapshot = %v err=%v", entries, err)
	}

	// Watch from the snapshot.
	events := make(chan unbundle.ChangeEvent, 16)
	cancel, err := store.Watch(accounts, at, unbundle.Callbacks{
		Event: func(ev unbundle.ChangeEvent) { events <- ev },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	store.Put("account/carol", []byte("10"))
	select {
	case ev := <-events:
		if ev.Key != "account/carol" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch event not delivered")
	}

	// A filtered view hides internals (§4.1).
	view := unbundle.NewView(store.Store, unbundle.PrefixRange("account/"),
		func(e unbundle.Entry) (unbundle.Entry, bool) {
			e.Value = []byte("REDACTED")
			return e, true
		})
	ventries, _, err := view.SnapshotRange(unbundle.FullRange())
	if err != nil || len(ventries) != 3 || string(ventries[0].Value) != "REDACTED" {
		t.Fatalf("view = %v err=%v", ventries, err)
	}

	// Knowledge regions.
	ks := unbundle.NewKnowledgeSet()
	ks.AddSnapshot(accounts, at)
	ks.ExtendTo(accounts, at+1)
	if v, ok := ks.StitchVersion(unbundle.PointRange("account/alice")); !ok || v != at+1 {
		t.Fatalf("stitch = %v/%v", v, ok)
	}
}

func TestPublicAPIBrokerAndSharder(t *testing.T) {
	broker := unbundle.NewBroker(unbundle.BrokerConfig{})
	defer broker.Close()
	if err := broker.CreateTopic("t", unbundle.TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	g, err := broker.Group("t", "g", unbundle.GroupConfig{StartAtEarliest: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.Join("m0")
	if err != nil {
		t.Fatal(err)
	}
	broker.Publish("t", "k", []byte("v"))
	msg, ok, err := c.Poll()
	if err != nil || !ok || string(msg.Value) != "v" {
		t.Fatalf("poll = %+v %v %v", msg, ok, err)
	}
	c.Ack(msg)

	shd := unbundle.NewSharder(unbundle.SharderConfig{InitialShards: 4}, "p0", "p1")
	defer shd.Close()
	owned := map[unbundle.Pod]int{}
	for i := 0; i < 4000; i += 13 {
		owned[shd.Owner(unbundle.Key(fmt.Sprintf("%012d", i)))]++
	}
	if len(owned) != 2 || owned[""] > 0 {
		t.Fatalf("ownership = %v", owned)
	}
}

func TestPublicAPIResyncWatcher(t *testing.T) {
	store := unbundle.NewWatchableStore(unbundle.HubConfig{Retention: 8})
	defer store.Close()
	for i := 0; i < 50; i++ {
		store.Put(unbundle.Key(fmt.Sprintf("k%02d", i%5)), []byte{byte(i)})
	}
	sink := &mapConsumer{mu: make(chan struct{}, 1), data: map[unbundle.Key][]byte{}}
	rw := unbundle.NewResyncWatcher(store, store, unbundle.FullRange(), sink)
	if err := rw.Start(); err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()
	// Initial snapshot fully populates the consumer despite tiny retention.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if sink.len() == 5 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("consumer holds %d keys, want 5", sink.len())
}

type mapConsumer struct {
	mu   chan struct{} // 1-slot mutex keeps the example dependency-free
	data map[unbundle.Key][]byte
}

func (m *mapConsumer) lock()   { m.mu <- struct{}{} }
func (m *mapConsumer) unlock() { <-m.mu }

func (m *mapConsumer) ResetSnapshot(r unbundle.Range, entries []unbundle.Entry, at unbundle.Version) {
	m.lock()
	defer m.unlock()
	for k := range m.data {
		if r.Contains(k) {
			delete(m.data, k)
		}
	}
	for _, e := range entries {
		m.data[e.Key] = e.Value
	}
}

func (m *mapConsumer) ApplyChange(ev unbundle.ChangeEvent) {
	m.lock()
	defer m.unlock()
	if ev.Mut.Op == unbundle.OpDelete {
		delete(m.data, ev.Key)
		return
	}
	m.data[ev.Key] = ev.Mut.Value
}

func (m *mapConsumer) AdvanceFrontier(unbundle.ProgressEvent) {}

func (m *mapConsumer) len() int {
	m.lock()
	defer m.unlock()
	return len(m.data)
}

func TestPublicAPIExtensions(t *testing.T) {
	// Sharded hub behind the same contracts.
	sh := unbundle.NewShardedHub(4, unbundle.HubConfig{})
	defer sh.Close()
	got := make(chan unbundle.ChangeEvent, 1)
	cancel, err := sh.Watch(unbundle.FullRange(), unbundle.NoVersion, unbundle.Callbacks{
		Event: func(ev unbundle.ChangeEvent) { got <- ev },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	sh.Append(unbundle.ChangeEvent{Key: "k", Mut: unbundle.Mutation{Op: unbundle.OpPut}, Version: 1})
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("sharded hub event not delivered")
	}

	// Remote watch over TCP through the facade.
	store := unbundle.NewWatchableStore(unbundle.HubConfig{})
	defer store.Close()
	srv, err := unbundle.ServeWatch("127.0.0.1:0", store, store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := unbundle.DialWatch(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	store.Put("k", []byte("v"))
	entries, _, err := client.SnapshotRange(unbundle.FullRange())
	if err != nil || len(entries) != 1 {
		t.Fatalf("remote snapshot = %v err=%v", entries, err)
	}
}
