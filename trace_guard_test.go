// Tracing-overhead guard: the causal tracer must be free when disabled. The
// hot append/fan-out path carries one `tracer.Enabled()` branch per stage,
// and this test pins that cost — a hub built with a disabled tracer must run
// the BenchmarkHubAppendFanout8 workload within 5% of a hub with no tracer
// at all. Benchmark-grade timing is too noisy for ordinary CI `go test`, so
// the guard only runs when TRACE_GUARD is set (see `make traceguard`).
package unbundle_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"unbundle"
)

// guardWorkload is the BenchmarkHubAppendFanout8 body against a caller-built
// hub: 8 range watchers, b.N appends round-robined across their ranges.
func guardWorkload(hub *unbundle.Hub) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hub.Append(unbundle.ChangeEvent{
				Key:     unbundle.Key(fmt.Sprintf("%d-key", i%8)),
				Mut:     unbundle.Mutation{Op: unbundle.OpPut, Value: []byte("v")},
				Version: unbundle.Version(i + 1),
			})
		}
	}
}

// guardRun measures the workload against a fresh hub with the given tracer
// (nil = untraced baseline) and returns ns/op. Watchers discard events.
func guardRun(t *testing.T, tracer *unbundle.Tracer) float64 {
	t.Helper()
	// Settle the heap before measuring: the previous round's hub (its
	// retention window is several MB of garbage once closed) must not
	// charge its collection to whichever config happens to run next, or
	// the fixed base-then-traced round order reads as tracer overhead.
	runtime.GC()
	hub := unbundle.NewHub(unbundle.HubConfig{
		Retention:     1 << 16,
		WatcherBuffer: 1 << 20,
		Metrics:       unbundle.NewMetricsRegistry(),
		Tracer:        tracer,
	})
	defer hub.Close()
	for w := 0; w < 8; w++ {
		lo := unbundle.Key(fmt.Sprintf("%d", w))
		hi := unbundle.Key(fmt.Sprintf("%d", w+1))
		cancel, err := hub.Watch(unbundle.Range{Low: lo, High: hi}, 0, unbundle.Callbacks{
			Event: func(unbundle.ChangeEvent) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cancel()
	}
	res := testing.Benchmark(guardWorkload(hub))
	return float64(res.T.Nanoseconds()) / float64(res.N)
}

// TestTracingOverheadGuard compares the disabled-tracer path against the
// no-tracer path on the same machine in the same process, taking the best of
// several interleaved rounds of each to shed scheduler noise. The 5% budget
// matches the acceptance bar against the recorded BENCH_hub.json median.
func TestTracingOverheadGuard(t *testing.T) {
	if os.Getenv("TRACE_GUARD") == "" {
		t.Skip("set TRACE_GUARD=1 to run the tracing-overhead guard (see make traceguard)")
	}
	// The budget is checked against the best observed run of each config.
	// Both minima only improve with more rounds, so when the ratio is over
	// budget the guard keeps measuring (up to maxRounds) before declaring a
	// regression: a genuine 5% cost stays over budget no matter how long
	// the minima accumulate, while a contended stretch on shared hardware
	// gets the chance to wash out.
	const rounds, maxRounds = 5, 15
	disabled := unbundle.NewTracer(unbundle.TraceConfig{SampleEvery: 0})
	if disabled.Enabled() {
		t.Fatal("SampleEvery 0 must yield a disabled tracer")
	}
	base, traced := -1.0, -1.0
	ratio := 0.0
	for i := 0; i < maxRounds; i++ {
		// Alternate which config runs first: whatever slot-position cost
		// the surrounding machine imposes (frequency ramps, cache state,
		// background load trends) is then paid evenly by both configs.
		runs := [2]*unbundle.Tracer{nil, disabled}
		if i%2 == 1 {
			runs[0], runs[1] = runs[1], runs[0]
		}
		for _, tr := range runs {
			v := guardRun(t, tr)
			if tr == nil {
				if base < 0 || v < base {
					base = v
				}
			} else if traced < 0 || v < traced {
				traced = v
			}
		}
		ratio = traced / base
		if i >= rounds-1 && ratio <= 1.05 {
			break
		}
	}
	t.Logf("no tracer: %.1f ns/op, disabled tracer: %.1f ns/op, ratio %.3f", base, traced, ratio)
	if ratio > 1.05 {
		t.Errorf("disabled tracer costs %.1f%% on the hot append path (budget 5%%)", (ratio-1)*100)
	}
}
