// Command benchjson converts raw `go test -bench` output into the
// machine-readable BENCH_hub.json perf trajectory. It aggregates repeated
// runs of the same benchmark (-count=N) by median, so one record per
// benchmark lands in the file, and merges into an existing file by label —
// re-running a label replaces its entry, other labels are kept. Typical use
// (see `make bench`):
//
//	go test -run XXX -bench 'Hub|Store|WatchEndToEnd' -benchmem -count=5 . > bench_raw.txt
//	go run ./cmd/benchjson -label post-sharding -in bench_raw.txt -out BENCH_hub.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's aggregated record: the medians of every
// reported metric across the run's -count repetitions.
type Benchmark struct {
	Name        string  `json:"name"`
	Samples     int     `json:"samples"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	P50Ns       float64 `json:"p50_ns,omitempty"`
	P99Ns       float64 `json:"p99_ns,omitempty"`
	// Counters holds metrics-registry counters the benchmark reported via
	// ReportMetric with a "ctr-" unit prefix (e.g. "ctr-delivered" →
	// Counters["delivered"]): delivery/drop/resync totals recorded alongside
	// the timing so a perf regression can be correlated with a behaviour
	// change in the same BENCH_hub.json entry.
	Counters map[string]float64 `json:"counters,omitempty"`
	// Extra holds any further ReportMetric units (e.g. events/replay).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Run is one labeled benchmark run (e.g. "pre-sharding", "post-sharding").
type Run struct {
	Label      string      `json:"label"`
	GoMaxProcs int         `json:"gomaxprocs,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the BENCH_hub.json document: the repo's perf trajectory, one entry
// per labeled run, oldest first.
type File struct {
	Runs []Run `json:"runs"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\w+?)(?:-(\d+))?\s+(\d+)\s+(.*)$`)

func main() {
	label := flag.String("label", "", "label for this run (required), e.g. pre-sharding")
	in := flag.String("in", "", "raw `go test -bench` output file (default stdin)")
	out := flag.String("out", "BENCH_hub.json", "JSON file to merge the run into")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}

	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}

	run := Run{Label: *label}
	samples := map[string]map[string][]float64{} // name -> unit -> values
	var order []string
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		if m[2] != "" {
			run.GoMaxProcs, _ = strconv.Atoi(m[2])
		}
		if samples[name] == nil {
			samples[name] = map[string][]float64{}
			order = append(order, name)
		}
		// The remainder alternates "<value> <unit>" pairs, tab-separated.
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			samples[name][unit] = append(samples[name][unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(order) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	for _, name := range order {
		units := samples[name]
		b := Benchmark{Name: name, Samples: len(units["ns/op"])}
		for unit, vals := range units {
			med := median(vals)
			switch unit {
			case "ns/op":
				b.NsPerOp = med
			case "allocs/op":
				b.AllocsPerOp = med
			case "B/op":
				b.BytesPerOp = med
			case "p50-ns":
				b.P50Ns = med
			case "p99-ns":
				b.P99Ns = med
			default:
				if ctr, ok := strings.CutPrefix(unit, "ctr-"); ok {
					if b.Counters == nil {
						b.Counters = map[string]float64{}
					}
					b.Counters[ctr] = med
					continue
				}
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[unit] = med
			}
		}
		run.Benchmarks = append(run.Benchmarks, b)
	}

	var doc File
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			fatal(fmt.Errorf("%s: %w", *out, err))
		}
	}
	replaced := false
	for i := range doc.Runs {
		if doc.Runs[i].Label == run.Label {
			doc.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		doc.Runs = append(doc.Runs, run)
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %d benchmarks under label %q to %s\n", len(run.Benchmarks), run.Label, *out)
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
