// Command benchjson converts raw `go test -bench` output into the
// machine-readable BENCH_hub.json perf trajectory. It aggregates repeated
// runs of the same benchmark (-count=N) by median, so one record per
// benchmark lands in the file, and merges into an existing file by label —
// re-running a label replaces its entry, other labels are kept. Typical use
// (see `make bench`):
//
//	go test -run XXX -bench 'Hub|Store|WatchEndToEnd' -benchmem -count=5 . > bench_raw.txt
//	go run ./cmd/benchjson -label post-sharding -in bench_raw.txt -out BENCH_hub.json
//
// With -merge, a re-run of a label folds its benchmarks into the label's
// existing entry by name instead of replacing the whole entry — how targeted
// benchmark sets (`make bench-replay`) add records to a label the full
// `make bench` also writes.
//
// With -diff, benchjson compares the two most recent runs in a trajectory
// file instead of ingesting raw output:
//
//	go run ./cmd/benchjson -diff BENCH_hub.json
//
// It prints per-benchmark deltas for ns/op, B/op and allocs/op, and exits
// nonzero when any benchmark's ns/op regressed by more than -threshold
// (default 10%) — the `make bench-diff` regression gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's aggregated record: the medians of every
// reported metric across the run's -count repetitions.
type Benchmark struct {
	Name        string  `json:"name"`
	Samples     int     `json:"samples"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	P50Ns       float64 `json:"p50_ns,omitempty"`
	P99Ns       float64 `json:"p99_ns,omitempty"`
	// Counters holds metrics-registry counters the benchmark reported via
	// ReportMetric with a "ctr-" unit prefix (e.g. "ctr-delivered" →
	// Counters["delivered"]): delivery/drop/resync totals recorded alongside
	// the timing so a perf regression can be correlated with a behaviour
	// change in the same BENCH_hub.json entry.
	Counters map[string]float64 `json:"counters,omitempty"`
	// Extra holds any further ReportMetric units (e.g. events/replay).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Run is one labeled benchmark run (e.g. "pre-sharding", "post-sharding").
type Run struct {
	Label      string      `json:"label"`
	GoMaxProcs int         `json:"gomaxprocs,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the BENCH_hub.json document: the repo's perf trajectory, one entry
// per labeled run, oldest first.
type File struct {
	Runs []Run `json:"runs"`
}

// Subbenchmark names (Benchmark.../case) keep their slash-separated suffix.
var benchLine = regexp.MustCompile(`^(Benchmark[\w/]+?)(?:-(\d+))?\s+(\d+)\s+(.*)$`)

func main() {
	label := flag.String("label", "", "label for this run (required), e.g. pre-sharding")
	in := flag.String("in", "", "raw `go test -bench` output file (default stdin)")
	out := flag.String("out", "BENCH_hub.json", "JSON file to merge the run into")
	merge := flag.Bool("merge", false, "fold benchmarks into an existing label entry by name instead of replacing it")
	diff := flag.Bool("diff", false, "compare the two most recent runs in a trajectory file (positional arg, default -out) and exit nonzero on regression")
	threshold := flag.Float64("threshold", 0.10, "with -diff: maximum tolerated fractional ns/op regression")
	flag.Parse()
	if *diff {
		path := *out
		if flag.NArg() > 0 {
			path = flag.Arg(0)
		}
		os.Exit(runDiff(path, *threshold))
	}
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}

	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}

	run := Run{Label: *label}
	samples := map[string]map[string][]float64{} // name -> unit -> values
	var order []string
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		if m[2] != "" {
			run.GoMaxProcs, _ = strconv.Atoi(m[2])
		}
		if samples[name] == nil {
			samples[name] = map[string][]float64{}
			order = append(order, name)
		}
		// The remainder alternates "<value> <unit>" pairs, tab-separated.
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			samples[name][unit] = append(samples[name][unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(order) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	for _, name := range order {
		units := samples[name]
		b := Benchmark{Name: name, Samples: len(units["ns/op"])}
		for unit, vals := range units {
			med := median(vals)
			switch unit {
			case "ns/op":
				b.NsPerOp = med
			case "allocs/op":
				b.AllocsPerOp = med
			case "B/op":
				b.BytesPerOp = med
			case "p50-ns":
				b.P50Ns = med
			case "p99-ns":
				b.P99Ns = med
			default:
				if ctr, ok := strings.CutPrefix(unit, "ctr-"); ok {
					if b.Counters == nil {
						b.Counters = map[string]float64{}
					}
					b.Counters[ctr] = med
					continue
				}
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[unit] = med
			}
		}
		run.Benchmarks = append(run.Benchmarks, b)
	}

	var doc File
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			fatal(fmt.Errorf("%s: %w", *out, err))
		}
	}
	replaced := false
	for i := range doc.Runs {
		if doc.Runs[i].Label == run.Label {
			if *merge {
				doc.Runs[i] = mergeRuns(doc.Runs[i], run)
			} else {
				doc.Runs[i] = run
			}
			replaced = true
			break
		}
	}
	if !replaced {
		doc.Runs = append(doc.Runs, run)
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %d benchmarks under label %q to %s\n", len(run.Benchmarks), run.Label, *out)
}

// mergeRuns folds fresh benchmarks into an existing label entry: records are
// replaced by name, new names append, and everything else the old entry
// holds is kept.
func mergeRuns(old, fresh Run) Run {
	merged := old
	if fresh.CPU != "" {
		merged.CPU = fresh.CPU
	}
	if fresh.GoMaxProcs != 0 {
		merged.GoMaxProcs = fresh.GoMaxProcs
	}
	merged.Benchmarks = append([]Benchmark(nil), old.Benchmarks...)
	for _, b := range fresh.Benchmarks {
		replaced := false
		for i := range merged.Benchmarks {
			if merged.Benchmarks[i].Name == b.Name {
				merged.Benchmarks[i] = b
				replaced = true
				break
			}
		}
		if !replaced {
			merged.Benchmarks = append(merged.Benchmarks, b)
		}
	}
	return merged
}

// runDiff compares the two most recent runs in the trajectory file at path,
// printing per-benchmark deltas, and returns the process exit code: 0 when
// every shared benchmark's ns/op stayed within threshold, 1 otherwise.
func runDiff(path string, threshold float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if len(doc.Runs) < 2 {
		fatal(fmt.Errorf("%s: need at least two runs to diff, have %d", path, len(doc.Runs)))
	}
	old, fresh := doc.Runs[len(doc.Runs)-2], doc.Runs[len(doc.Runs)-1]
	fmt.Printf("benchjson: %s: %q → %q\n", path, old.Label, fresh.Label)

	byName := map[string]Benchmark{}
	for _, b := range old.Benchmarks {
		byName[b.Name] = b
	}
	pct := func(from, to float64) string {
		if from == 0 {
			return "   n/a"
		}
		return fmt.Sprintf("%+6.1f%%", (to-from)/from*100)
	}
	worst, worstName := 0.0, ""
	for _, b := range fresh.Benchmarks {
		o, ok := byName[b.Name]
		if !ok {
			fmt.Printf("  %-28s (new in %q)\n", b.Name, fresh.Label)
			continue
		}
		delete(byName, b.Name)
		fmt.Printf("  %-28s ns/op %12.1f → %12.1f %s   B/op %10.0f → %10.0f %s   allocs %6.0f → %6.0f %s\n",
			b.Name,
			o.NsPerOp, b.NsPerOp, pct(o.NsPerOp, b.NsPerOp),
			o.BytesPerOp, b.BytesPerOp, pct(o.BytesPerOp, b.BytesPerOp),
			o.AllocsPerOp, b.AllocsPerOp, pct(o.AllocsPerOp, b.AllocsPerOp))
		if o.NsPerOp > 0 {
			if d := (b.NsPerOp - o.NsPerOp) / o.NsPerOp; d > worst {
				worst, worstName = d, b.Name
			}
		}
	}
	for _, b := range old.Benchmarks {
		if _, dropped := byName[b.Name]; dropped {
			fmt.Printf("  %-28s (only in %q)\n", b.Name, old.Label)
		}
	}
	if worst > threshold {
		fmt.Printf("benchjson: FAIL — %s regressed %+.1f%% ns/op (threshold %+.1f%%)\n",
			worstName, worst*100, threshold*100)
		return 1
	}
	fmt.Printf("benchjson: ok — worst ns/op regression %+.1f%% (threshold %+.1f%%)\n", worst*100, threshold*100)
	return 0
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
