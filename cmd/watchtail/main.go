// Command watchtail demonstrates the watch contract interactively: it runs
// a WatchableStore, drives a synthetic writer against it, and tails a key
// range — printing change events, progress marks, and (if you shrink the
// retention) resync signals, exactly as a consumer would see them.
//
// Usage:
//
//	watchtail                          # tail the whole keyspace for 3s
//	watchtail -prefix user/ -dur 10s   # tail a prefix
//	watchtail -retention 16            # tiny soft state: watch resyncs happen
//	watchtail -metrics                 # dump the metrics registry at exit
//	watchtail -debug-addr :6060        # serve /metrics /watchers /traces
//	                                   # /regions /debug/pprof while tailing
//	watchtail -trace-every 8           # sample 1-in-8 events into /traces
//	watchtail -remote                  # tail through the batched TCP
//	                                   # transport on loopback instead of
//	                                   # in-process
//	watchtail -remote -reconnect       # auto-reconnect and resume the watch
//	                                   # if the connection drops
//	watchtail -remote -heartbeat 250ms # liveness probes every 250ms (0 =
//	                                   # transport default, negative = off)
//	watchtail -flightrec               # run the flight-recorder stack: tail
//	                                   # the black box at exit, dump on any
//	                                   # anomaly (serve it at -debug-addr's
//	                                   # /flightrec and /dump)
//	watchtail -budget 1048576          # run under a 1 MiB memory governor:
//	                                   # retention evicts, laggards shed, and
//	                                   # admission refusals print a visible
//	                                   # backoff instead of growing the heap
//	watchtail -budget 1048576 -govern  # also dump governor stats at exit
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"unbundle"
)

func main() {
	var (
		prefix     = flag.String("prefix", "", "key prefix to watch (empty = everything)")
		dur        = flag.Duration("dur", 3*time.Second, "how long to tail")
		retention  = flag.Int("retention", 4096, "watch hub soft-state window (events)")
		rate       = flag.Duration("rate", 100*time.Millisecond, "writer interval")
		dumpMet    = flag.Bool("metrics", false, "dump the metrics registry at exit")
		debugAddr  = flag.String("debug-addr", "", "serve the debug HTTP server on this address (empty = off)")
		traceEvery = flag.Int("trace-every", 0, "sample 1 in N events into the trace ring (0 = off)")
		remoteTail = flag.Bool("remote", false, "tail through the batched TCP transport on loopback")
		reconnect  = flag.Bool("reconnect", false, "with -remote: auto-reconnect with backoff and resume the watch")
		heartbeat  = flag.Duration("heartbeat", 0, "with -remote: heartbeat interval (0 = transport default, negative = disabled)")
		flightRec  = flag.Bool("flightrec", false, "run the flight recorder + anomaly detectors; print the black-box tail at exit")
		budget     = flag.Int64("budget", 0, "memory governor budget in bytes (0 = ungoverned)")
		governDump = flag.Bool("govern", false, "with -budget: dump governor stats at exit")
	)
	flag.Parse()

	var tracer *unbundle.Tracer
	if *traceEvery > 0 {
		cfg := unbundle.TraceConfig{SampleEvery: *traceEvery}
		if *remoteTail {
			// Traces complete at the client callback, spanning all six
			// stages: commit → append → enqueue → deliver → remote-enqueue
			// → remote-deliver.
			cfg.FinalStage = unbundle.TraceStageRemoteDeliver
		}
		tracer = unbundle.NewTracer(cfg)
	}
	// The flight-recorder stack: an always-on event ring wired through every
	// layer below, detectors on a 1s cadence, dumps retained in memory (and
	// served at /dump when -debug-addr is set).
	var flight *unbundle.FlightStack
	var recorder *unbundle.FlightRecorder
	if *flightRec {
		flight = unbundle.NewFlightStack(unbundle.FlightStackConfig{Tracer: tracer})
		recorder = flight.Rec
		flight.Mon.Start()
		defer flight.Mon.Stop()
	}

	// The memory governor: one process-wide budget the hub's retention,
	// watcher rings and (with -remote) the transport outbox all charge into.
	var gov *unbundle.Governor
	if *budget > 0 {
		gov = unbundle.NewGovernor(unbundle.GovernorConfig{Budget: *budget, Recorder: recorder})
		defer gov.Close()
		st := gov.Snapshot()
		fmt.Printf("memory governor: budget %d bytes, pressure %s (evict -> shed -> reject)\n",
			st.BudgetBytes, st.Pressure)
	}

	store := unbundle.NewWatchableStore(unbundle.HubConfig{Retention: *retention, Tracer: tracer, Recorder: recorder, Governor: gov})
	defer store.Close()

	// The view the tail consumes from: the store itself, or — with -remote —
	// a WatchClient dialed against a loopback WatchServer, so events cross
	// the batched wire protocol on their way to the callbacks below.
	var view interface {
		unbundle.Watchable
		unbundle.Snapshotter
	} = store
	var watchSrv *unbundle.WatchServer
	if *remoteTail {
		srv, err := unbundle.ServeWatchWith("127.0.0.1:0", store, store,
			unbundle.WatchServerConfig{Tracer: tracer, HeartbeatInterval: *heartbeat, Recorder: recorder, Governor: gov})
		if err != nil {
			fmt.Fprintf(os.Stderr, "watchtail: watch server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		watchSrv = srv
		clientCfg := unbundle.WatchClientConfig{Tracer: tracer, HeartbeatInterval: *heartbeat, Recorder: recorder}
		if *reconnect {
			// Zero-value backoff fields take the transport defaults
			// (25ms base doubling to 1s, jittered, 8 attempts per outage).
			clientCfg.Reconnect = unbundle.ReconnectPolicy{Enabled: true}
		}
		client, err := unbundle.DialWatchWith(srv.Addr(), clientCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "watchtail: watch client: %v\n", err)
			os.Exit(1)
		}
		defer client.Close()
		// The negotiated protocol arrives with the server's hello reply,
		// moments after dial; wait briefly so the banner can report which
		// codec this tail actually speaks (binary v4, or gob fallback).
		ver, codec := client.ProtocolInfo()
		for wait := 0; ver == 0 && wait < 100; wait++ {
			time.Sleep(10 * time.Millisecond)
			ver, codec = client.ProtocolInfo()
		}
		if ver == 0 {
			fmt.Printf("tailing over TCP via %s (protocol negotiation pending)\n", srv.Addr())
		} else {
			fmt.Printf("tailing over TCP via %s (protocol v%d, %s codec)\n", srv.Addr(), ver, codec)
		}
		view = client
	}

	// The tailing consumer's knowledge regions (Figure 5), published on the
	// debug server's /regions endpoint. The watch callbacks below are the
	// only writer; the debug server reads under the same lock.
	var ksMu sync.Mutex
	ks := unbundle.NewKnowledgeSet()

	if *debugAddr != "" {
		dbgCfg := unbundle.DebugConfig{
			Tracer: tracer,
			Lags:   store.Hub().WatcherLags,
			Regions: func() []unbundle.KnowledgeRegion {
				ksMu.Lock()
				defer ksMu.Unlock()
				return append([]unbundle.KnowledgeRegion(nil), ks.Regions()...)
			},
		}
		if watchSrv != nil {
			dbgCfg.RemoteConns = watchSrv.Conns
		}
		if flight != nil {
			dbgCfg.Flight = flight.Rec
			dbgCfg.Dumps = flight.Cap
		}
		if gov != nil {
			dbgCfg.Govern = gov.Snapshot
		}
		dbg, err := unbundle.ServeDebug(*debugAddr, dbgCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "watchtail: debug server: %v\n", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Printf("debug server on http://%s (metrics, watchers, traces, regions, govern, healthz, pprof)\n", dbg.Addr())
	}

	// A synthetic writer: three tenants, rotating updates and deletes.
	go func() {
		i := 0
		for {
			tenant := []string{"user/", "order/", "sensor/"}[i%3]
			key := unbundle.Key(fmt.Sprintf("%s%04d", tenant, i%7))
			if i%11 == 10 {
				store.Delete(key)
			} else {
				store.Put(key, []byte(fmt.Sprintf("value-%d", i)))
			}
			i++
			time.Sleep(*rate)
		}
	}()

	r := unbundle.FullRange()
	if *prefix != "" {
		r = unbundle.PrefixRange(unbundle.Key(*prefix))
	}
	// Snapshot-then-watch, by hand, so each step is visible. Under a governor
	// either step may be refused with a retry hint instead of an error — the
	// degradation ladder's last rung, made visible here as a backoff message.
	entries, at, err := view.SnapshotRange(r)
	for {
		var ov *unbundle.Overloaded
		if !errors.As(err, &ov) {
			break
		}
		fmt.Printf("OVERLOADED snapshot refused (%s); backing off %v\n", ov.Reason, ov.RetryAfter)
		time.Sleep(ov.RetryAfter)
		entries, at, err = view.SnapshotRange(r)
	}
	if err != nil {
		panic(err)
	}
	fmt.Printf("snapshot of %v at %v: %d entries\n", r, at, len(entries))
	for _, e := range entries {
		fmt.Printf("  %s = %q (written at %v)\n", e.Key, e.Value, e.Version)
	}
	ksMu.Lock()
	ks.AddSnapshot(r, at)
	ksMu.Unlock()

	cbs := unbundle.Callbacks{
		Event: func(ev unbundle.ChangeEvent) {
			if ev.Mut.Op == unbundle.OpDelete {
				fmt.Printf("event    %v  %s deleted\n", ev.Version, ev.Key)
				return
			}
			fmt.Printf("event    %v  %s = %q\n", ev.Version, ev.Key, ev.Mut.Value)
		},
		Progress: func(p unbundle.ProgressEvent) {
			fmt.Printf("progress %v  complete over %v\n", p.Version, p.Range)
			ksMu.Lock()
			ks.ExtendTo(p.Range, p.Version)
			ksMu.Unlock()
		},
		Resync: func(rs unbundle.ResyncEvent) {
			fmt.Printf("RESYNC   need snapshot >= %v over %v (%s)\n", rs.MinVersion, rs.Range, rs.Reason)
		},
	}
	cancel, err := view.Watch(r, at, cbs)
	for {
		var ov *unbundle.Overloaded
		if !errors.As(err, &ov) {
			break
		}
		fmt.Printf("OVERLOADED watch refused (%s); backing off %v\n", ov.Reason, ov.RetryAfter)
		time.Sleep(ov.RetryAfter)
		cancel, err = view.Watch(r, at, cbs)
	}
	if err != nil {
		panic(err)
	}
	defer cancel()

	time.Sleep(*dur)
	fmt.Println("done")
	if gov != nil && *governDump {
		st := gov.Snapshot()
		fmt.Println("--- govern ---")
		fmt.Printf("pressure %s  used %d of %d budget bytes  sheds=%d rejects=%d relief_runs=%d quarantined=%d\n",
			st.Pressure, st.UsedBytes, st.BudgetBytes, st.Sheds, st.Rejects, st.ReliefRuns, st.Quarantined)
		for _, a := range st.Accounts {
			fmt.Printf("  %-10s %d bytes\n", a.Name, a.Used)
		}
	}
	if *dumpMet {
		fmt.Println("--- metrics ---")
		unbundle.DefaultMetrics().WriteTo(os.Stdout)
	}
	if flight != nil {
		fmt.Println("--- flight recorder ---")
		for _, rec := range flight.Rec.Tail(64) {
			fmt.Printf("%6d %s %-18s %s id=%d v=%d n=%d %s\n",
				rec.Seq, time.Unix(0, rec.At).Format("15:04:05.000"), rec.Kind,
				rec.Comp, rec.ID, rec.Version, rec.N, rec.Detail)
		}
		for _, d := range flight.Cap.Dumps() {
			fmt.Printf("dump %d: %s (%s) — %d records, %d traces\n",
				d.ID, d.Detector, d.Reason, len(d.Records), len(d.Traces))
		}
	}
}
