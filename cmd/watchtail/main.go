// Command watchtail demonstrates the watch contract interactively: it runs
// a WatchableStore, drives a synthetic writer against it, and tails a key
// range — printing change events, progress marks, and (if you shrink the
// retention) resync signals, exactly as a consumer would see them.
//
// Usage:
//
//	watchtail                          # tail the whole keyspace for 3s
//	watchtail -prefix user/ -dur 10s   # tail a prefix
//	watchtail -retention 16            # tiny soft state: watch resyncs happen
//	watchtail -metrics                 # dump the metrics registry at exit
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"unbundle"
)

func main() {
	var (
		prefix    = flag.String("prefix", "", "key prefix to watch (empty = everything)")
		dur       = flag.Duration("dur", 3*time.Second, "how long to tail")
		retention = flag.Int("retention", 4096, "watch hub soft-state window (events)")
		rate      = flag.Duration("rate", 100*time.Millisecond, "writer interval")
		dumpMet   = flag.Bool("metrics", false, "dump the metrics registry at exit")
	)
	flag.Parse()

	store := unbundle.NewWatchableStore(unbundle.HubConfig{Retention: *retention})
	defer store.Close()

	// A synthetic writer: three tenants, rotating updates and deletes.
	go func() {
		i := 0
		for {
			tenant := []string{"user/", "order/", "sensor/"}[i%3]
			key := unbundle.Key(fmt.Sprintf("%s%04d", tenant, i%7))
			if i%11 == 10 {
				store.Delete(key)
			} else {
				store.Put(key, []byte(fmt.Sprintf("value-%d", i)))
			}
			i++
			time.Sleep(*rate)
		}
	}()

	r := unbundle.FullRange()
	if *prefix != "" {
		r = unbundle.PrefixRange(unbundle.Key(*prefix))
	}
	// Snapshot-then-watch, by hand, so each step is visible.
	entries, at, err := store.SnapshotRange(r)
	if err != nil {
		panic(err)
	}
	fmt.Printf("snapshot of %v at %v: %d entries\n", r, at, len(entries))
	for _, e := range entries {
		fmt.Printf("  %s = %q (written at %v)\n", e.Key, e.Value, e.Version)
	}

	cancel, err := store.Watch(r, at, unbundle.Callbacks{
		Event: func(ev unbundle.ChangeEvent) {
			if ev.Mut.Op == unbundle.OpDelete {
				fmt.Printf("event    %v  %s deleted\n", ev.Version, ev.Key)
				return
			}
			fmt.Printf("event    %v  %s = %q\n", ev.Version, ev.Key, ev.Mut.Value)
		},
		Progress: func(p unbundle.ProgressEvent) {
			fmt.Printf("progress %v  complete over %v\n", p.Version, p.Range)
		},
		Resync: func(rs unbundle.ResyncEvent) {
			fmt.Printf("RESYNC   need snapshot >= %v over %v (%s)\n", rs.MinVersion, rs.Range, rs.Reason)
		},
	})
	if err != nil {
		panic(err)
	}
	defer cancel()

	time.Sleep(*dur)
	fmt.Println("done")
	if *dumpMet {
		fmt.Println("--- metrics ---")
		unbundle.DefaultMetrics().WriteTo(os.Stdout)
	}
}
