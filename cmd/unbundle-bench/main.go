// Command unbundle-bench regenerates the paper-reproduction experiment
// tables (E1–E11 in DESIGN.md): for every figure and §3/§4 claim of
// "Understanding the limitations of pubsub systems" it runs the pubsub
// baseline and the watch counterpart and prints the measured comparison,
// followed by PASS/FAIL shape checks.
//
// Usage:
//
//	unbundle-bench                 # run everything at full scale
//	unbundle-bench -quick          # small parameters (seconds)
//	unbundle-bench -experiment E6  # a single experiment
//	unbundle-bench -list           # list experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"unbundle/internal/experiments"
	"unbundle/internal/metrics"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "run with reduced parameters")
		exp     = flag.String("experiment", "", "run a single experiment by ID (e.g. E6)")
		list    = flag.Bool("list", false, "list experiments and exit")
		seed    = flag.Int64("seed", 1, "random seed")
		dumpMet = flag.Bool("metrics", false, "dump the metrics registry after the run")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-28s %s\n", e.ID, e.Anchor, e.Title)
		}
		return
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	var toRun []experiments.Experiment
	if *exp != "" {
		e, ok := experiments.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	} else {
		toRun = experiments.All()
	}

	failed := 0
	for _, e := range toRun {
		fmt.Printf("### %s — %s (%s)\n", e.ID, e.Title, e.Anchor)
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		res.Render(os.Stdout)
		failed += len(res.Failed())
	}
	if *dumpMet {
		fmt.Println("### metrics")
		metrics.Default().WriteTo(os.Stdout)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d check(s) failed\n", failed)
		os.Exit(1)
	}
}
