// Command unbundle-bench regenerates the paper-reproduction experiment
// tables (E1–E11 in DESIGN.md): for every figure and §3/§4 claim of
// "Understanding the limitations of pubsub systems" it runs the pubsub
// baseline and the watch counterpart and prints the measured comparison,
// followed by PASS/FAIL shape checks.
//
// Usage:
//
//	unbundle-bench                 # run everything at full scale
//	unbundle-bench -quick          # small parameters (seconds)
//	unbundle-bench -experiment E6  # a single experiment
//	unbundle-bench -list           # list experiments
//	unbundle-bench -json           # one JSON document on stdout (logs on stderr)
//	unbundle-bench -debug-addr :6060  # serve /metrics + pprof during the run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"unbundle/internal/debugz"
	"unbundle/internal/experiments"
	"unbundle/internal/metrics"
)

// jsonResult is the machine-readable form of one experiment outcome.
type jsonResult struct {
	ID     string              `json:"id"`
	Title  string              `json:"title"`
	Anchor string              `json:"anchor"`
	Table  *metrics.Table      `json:"table"`
	Checks []experiments.Check `json:"checks"`
	TookNs int64               `json:"took_ns"`
	Error  string              `json:"error,omitempty"`
}

func main() {
	var (
		quick     = flag.Bool("quick", false, "run with reduced parameters")
		exp       = flag.String("experiment", "", "run a single experiment by ID (e.g. E6)")
		list      = flag.Bool("list", false, "list experiments and exit")
		seed      = flag.Int64("seed", 1, "random seed")
		dumpMet   = flag.Bool("metrics", false, "dump the metrics registry after the run")
		jsonOut   = flag.Bool("json", false, "emit one JSON document on stdout; human output moves to stderr")
		debugAddr = flag.String("debug-addr", "", "serve the debug HTTP server on this address during the run (empty = off)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-28s %s\n", e.ID, e.Anchor, e.Title)
		}
		return
	}

	if *debugAddr != "" {
		dbg, err := debugz.Serve(*debugAddr, debugz.Config{Metrics: metrics.Default()})
		if err != nil {
			fmt.Fprintf(os.Stderr, "unbundle-bench: debug server: %v\n", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", dbg.Addr())
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	var toRun []experiments.Experiment
	if *exp != "" {
		e, ok := experiments.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	} else {
		toRun = experiments.All()
	}

	failed := 0
	var results []jsonResult
	for _, e := range toRun {
		if *jsonOut {
			experiments.Logf("running %s — %s", e.ID, e.Title)
		} else {
			fmt.Printf("### %s — %s (%s)\n", e.ID, e.Title, e.Anchor)
		}
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			if *jsonOut {
				results = append(results, jsonResult{ID: e.ID, Title: e.Title, Anchor: e.Anchor, Error: err.Error()})
			}
			continue
		}
		if *jsonOut {
			results = append(results, jsonResult{
				ID: res.ID, Title: res.Title, Anchor: res.Anchor,
				Table: res.Table, Checks: res.Checks, TookNs: int64(res.Took),
			})
		} else {
			res.Render(os.Stdout)
		}
		failed += len(res.Failed())
	}
	if *jsonOut {
		doc := struct {
			Results []jsonResult              `json:"results"`
			Failed  int                       `json:"failed_checks"`
			Metrics *metrics.RegistrySnapshot `json:"metrics,omitempty"`
		}{Results: results, Failed: failed}
		if *dumpMet {
			snap := metrics.Default().Snapshot()
			doc.Metrics = &snap
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "unbundle-bench: encode: %v\n", err)
			os.Exit(1)
		}
	} else if *dumpMet {
		fmt.Println("### metrics")
		metrics.Default().WriteTo(os.Stdout)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d check(s) failed\n", failed)
		os.Exit(1)
	}
}
