GO ?= go

.PHONY: build test race vet bench bench-remote bench-replay bench-diff chaos fuzz traceguard recguard govguard detectors soak soak-short verify clean

build:
	$(GO) build ./...

# test is the tier-1 gate: vet + build + the full unit/property/integration
# suite.
test: vet build
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the hub/store microbenchmarks 5× each and folds the medians
# into BENCH_hub.json under BENCH_LABEL — the repo's perf trajectory. Raw
# output is kept in bench_raw.txt for inspection; BENCH_hub.json is what
# gets committed.
BENCH_LABEL ?= dev
BENCH_HUB = 'BenchmarkStoreTxnCommit$$|BenchmarkHubAppendFanout8$$|BenchmarkHubAppendFanoutSharded$$|BenchmarkStoreCommitCDCBatch$$|BenchmarkWatchEndToEnd$$'
BENCH_CORE = 'BenchmarkHubWatchReplay$$|BenchmarkHubAppendBatch$$'

bench:
	$(GO) test -run XXX -bench $(BENCH_HUB) -benchmem -count=5 . > bench_raw.txt
	$(GO) test -run XXX -bench $(BENCH_CORE) -benchmem -count=5 ./internal/core >> bench_raw.txt
	$(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -in bench_raw.txt -out BENCH_hub.json

# bench-remote is the remote-transport counterpart of bench: loopback TCP
# fan-out at 8 and 64 watchers plus large-snapshot streaming, medians-of-5
# folded into BENCH_remote.json. events/sec and wire-B/event in each entry's
# extra map are the headline transport numbers. The Gob variants pin the
# client to protocol v3 and the Codec benchmarks compare the two encoders
# in-process, so every run carries its own same-session gob-vs-binary A/B.
BENCH_REMOTE = 'BenchmarkRemoteFanout8$$|BenchmarkRemoteFanout64$$|BenchmarkRemoteFanout64Gob$$|BenchmarkRemoteSnapshot4MB$$|BenchmarkCodecEncodeBatch$$|BenchmarkCodecDecodeBatch$$'

bench-remote:
	$(GO) test -run XXX -bench $(BENCH_REMOTE) -benchmem -count=5 ./internal/remote > bench_remote_raw.txt
	$(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -in bench_remote_raw.txt -out BENCH_remote.json

# bench-replay records the catch-up path: full-window replay plus the
# resume-storm scaling benchmarks (64/256/512 watchers reconnecting at once),
# medians-of-5 folded into BENCH_hub.json under REPLAY_LABEL. -merge adds the
# records to the label's entry without clobbering what `make bench` wrote
# there.
REPLAY_LABEL ?= post-segments
BENCH_REPLAY = 'BenchmarkHubWatchReplay$$|BenchmarkHubResumeStorm64$$|BenchmarkHubResumeStorm256$$|BenchmarkHubResumeStorm512$$'

bench-replay:
	$(GO) test -run XXX -bench $(BENCH_REPLAY) -benchmem -count=5 ./internal/core > bench_replay_raw.txt
	$(GO) run ./cmd/benchjson -label $(REPLAY_LABEL) -merge -in bench_replay_raw.txt -out BENCH_hub.json

# bench-diff compares the two most recent labeled runs in BENCH_hub.json and
# BENCH_remote.json, printing per-benchmark ns/op, B/op and allocs/op deltas,
# and fails above a 10% ns/op regression — run it after
# `make bench BENCH_LABEL=<new>` (and bench-remote) to gate a change against
# the previous label.
bench-diff:
	$(GO) run ./cmd/benchjson -diff BENCH_hub.json
	$(GO) run ./cmd/benchjson -diff BENCH_remote.json

# chaos runs the transport fault-injection suite under the race detector:
# heartbeat-detected half-open connections, repeated severs with resume,
# graceful drain, close-ordering, malformed frames (gob and binary), the
# cross-version protocol matrix, overflow recovery, and the E13/E16
# resilience experiments end to end.
CHAOS_RUN = 'TestChaos|TestServerShutdown|TestClientClose|TestReconnect|TestMalformed|TestOverflow|TestPostOverflow|TestV2Interop|TestCrossVersion'

chaos:
	$(GO) test -race -count=1 -run $(CHAOS_RUN) ./internal/remote
	$(GO) test -race -count=1 -run 'TestChaosPartitionProducesRetrievableDump' ./internal/debugz
	$(GO) test -race -count=1 -run 'TestAllExperimentsQuick/(E13|E15|E16|E17)' ./internal/experiments

# fuzz smoke-runs the wire-codec fuzzer: FuzzDecodeFrame drives the binary
# frame decoder with mutations of the golden fixtures for a bounded wall
# time. Long exploratory runs use `go test -fuzz` directly; this target is
# the regression gate.
FUZZ_TIME ?= 10s

fuzz:
	$(GO) test -run XXX -fuzz FuzzDecodeFrame -fuzztime $(FUZZ_TIME) ./internal/remote

# traceguard pins the cost of the (disabled) causal tracer on the hot hub
# append path: a hub built with a disabled tracer must stay within 5% of one
# with no tracer at all. Benchmark-grade, so it is opt-in via TRACE_GUARD.
traceguard:
	TRACE_GUARD=1 $(GO) test -run TestTracingOverheadGuard -v -count=1 .

# recguard is traceguard's flight-recorder twin: a hub with the always-on
# recorder attached must run the hot append/fan-out workload within 5% of a
# hub with no recorder. Benchmark-grade, so it is opt-in via REC_GUARD.
recguard:
	REC_GUARD=1 $(GO) test -run TestFlightRecorderOverheadGuard -v -count=1 .

# govguard pins the cost of memory governance while under budget: a hub
# charging into a governor it never pressures must run the hot append/fan-out
# workload within 5% of an ungoverned hub. Benchmark-grade, opt-in via
# GOV_GUARD.
govguard:
	GOV_GUARD=1 $(GO) test -run TestGovernorOverheadGuard -v -count=1 .

# soak drives the full governed stack — MVCC store, hub, remote server, TCP,
# reconnecting clients, ResyncWatchers — through an overload storm under the
# race detector: stalled consumers, large values, every connection severed
# mid-storm. It must end with the heap bounded, the degradation ladder
# engaged, every consumer converged byte-equal, and zero goroutines leaked.
# soak-short is the same storm at CI scale and is part of `make verify`.
soak:
	$(GO) test -race -count=1 -run TestSoakOverloadStorm -v ./internal/experiments

soak-short:
	$(GO) test -race -count=1 -short -run TestSoakOverloadStorm ./internal/experiments

# detectors runs the deterministic anomaly-detector suite alone: every
# detector fires on its synthetic anomaly, none fires across ten simulated
# steady-state minutes, and the monitor/capture plumbing works on the fake
# clock.
detectors:
	$(GO) test -race -count=1 ./internal/flightrec

# verify is the gate a change must pass before it ships. The race target
# includes the hub contract, stress, and latency-isolation tests; chaos is
# the transport fault-injection suite (including the black-box dump e2e);
# fuzz smoke-runs the wire-codec fuzzer against the golden corpus;
# detectors is the deterministic anomaly-detector suite; soak-short is the
# CI-scale overload storm against the governed stack; traceguard, recguard
# and govguard keep tracing, flight recording and idle governance free on
# the hot path.
verify: vet build race chaos fuzz detectors soak-short traceguard recguard govguard

clean:
	$(GO) clean ./...
