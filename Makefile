GO ?= go

.PHONY: build test race vet bench verify clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# verify is the gate a change must pass before it ships.
verify: vet build race

clean:
	$(GO) clean ./...
