module unbundle

go 1.24
