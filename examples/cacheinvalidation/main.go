// Cache invalidation under auto-sharding — the paper's Figure 2, end to end.
//
// A distributed cache moves key ownership dynamically. On the pubsub path,
// the invalidation router's view of the auto-sharder lags, so the
// invalidation for a racing update is acknowledged by the OLD owner and the
// NEW owner serves a stale value forever. On the watch path, the new owner's
// knowledge comes from the store itself and converges.
//
// Run: go run ./examples/cacheinvalidation
package main

import (
	"fmt"
	"time"

	"unbundle/internal/cache"
	"unbundle/internal/clockwork"
	"unbundle/internal/keyspace"
	"unbundle/internal/sharder"
	"unbundle/internal/workload"
)

func main() {
	fmt.Println("=== pubsub invalidation (Figure 2) ===")
	pubsubRace()
	fmt.Println()
	fmt.Println("=== watch-based cache, same schedule ===")
	watchConverges()
}

func pubsubRace() {
	clock := clockwork.NewFake()
	c, err := cache.NewPubSubCluster(cache.PubSubConfig{
		Clock:         clock,
		Mode:          cache.ModeRouted,
		Pods:          []sharder.Pod{"p_old", "p_new"},
		RouterLag:     time.Second, // the pubsub system learns about moves late
		InitialShards: 2,
	})
	if err != nil {
		panic(err)
	}
	defer c.Close()
	clock.Advance(time.Second) // the router learns the initial table
	for c.RouterGeneration() < 1 {
		time.Sleep(time.Millisecond)
	}

	x := keyspace.NumericKey(100)
	c.Update(x, workload.Value(x, 1))
	c.Pump()

	// Make sure "p_old" owns x, then cache it there.
	if c.Sharder().Owner(x) != "p_old" {
		c.Sharder().MoveRange(keyspace.NumericRange(100, 101), "p_old")
		clock.Advance(2 * time.Second)
		for c.RouterGeneration() < c.Sharder().Stats().Generation {
			time.Sleep(time.Millisecond)
		}
	}
	c.Read(x)
	fmt.Printf("p_old serves and caches x (seq 1)\n")

	// The auto-sharder moves x to p_new; p_new serves immediately.
	c.Sharder().MoveRange(keyspace.NumericRange(100, 101), "p_new")
	res, _ := c.Read(x)
	fmt.Printf("sharder moved x; %s fetched and cached %q\n", res.Pod, res.Value)

	// The racing update: published while the router still routes to p_old.
	c.Update(x, workload.Value(x, 2))
	c.Pump()
	fmt.Println("update to seq 2 published; invalidation delivered to p_old (stale routing)")

	clock.Advance(2 * time.Second) // router catches up — too late
	c.Pump()
	res, _ = c.Read(x)
	want, _, _, _ := c.Store().Get(x, 0)
	fmt.Printf("final read from %s: %q (store has %q) — PERMANENTLY STALE: %v\n",
		res.Pod, res.Value, want, string(res.Value) != string(want))
}

func watchConverges() {
	c := cache.NewWatchCluster(cache.WatchConfig{
		Pods:          []sharder.Pod{"p_old", "p_new"},
		InitialShards: 2,
	})
	defer c.Close()

	x := keyspace.NumericKey(100)
	c.Update(x, workload.Value(x, 1))
	if c.Sharder().Owner(x) != "p_old" {
		c.Sharder().MoveRange(keyspace.NumericRange(100, 101), "p_old")
	}
	waitFor(func() bool { return c.Pods()["p_old"].Covers(x) })
	c.Read(x)
	fmt.Println("p_old serves x from its knowledge (seq 1)")

	c.Sharder().MoveRange(keyspace.NumericRange(100, 101), "p_new")
	c.Update(x, workload.Value(x, 2)) // races with the handoff
	fmt.Println("sharder moved x to p_new; update to seq 2 races with the handoff")

	want := workload.Value(x, 2)
	waitFor(func() bool {
		res, _ := c.Read(x)
		return string(res.Value) == string(want)
	})
	res, _ := c.Read(x)
	fmt.Printf("final read from %s: %q — fresh (the range watch carried the update)\n", res.Pod, res.Value)
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	panic("timed out")
}
