// Quickstart: the storage-plus-watch model in ~80 lines.
//
// A producer writes to an MVCC store with a built-in watch (the paper's
// Figure 3, bottom-left quadrant). A consumer takes a snapshot, then watches
// the store from the snapshot version — the end-to-end protocol that
// replaces a pubsub subscription, with explicit recovery if it ever lags.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"unbundle"
)

func main() {
	// The producer's store, with built-in watch support.
	store := unbundle.NewWatchableStore(unbundle.HubConfig{})
	defer store.Close()

	// Producer: write some initial state, transactionally.
	store.Put("account/alice", []byte("balance=100"))
	store.Put("account/bob", []byte("balance=50"))
	if _, err := store.Commit(func(tx *unbundle.Tx) error {
		// Transfer: both writes commit at one version.
		tx.Put("account/alice", []byte("balance=80"))
		tx.Put("account/bob", []byte("balance=70"))
		return nil
	}); err != nil {
		panic(err)
	}

	// Consumer step 1: read a consistent snapshot of the watched range.
	accounts := unbundle.PrefixRange("account/")
	entries, at, err := store.SnapshotRange(accounts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("snapshot at %v:\n", at)
	for _, e := range entries {
		fmt.Printf("  %s = %s\n", e.Key, e.Value)
	}

	// Consumer step 2: watch from the snapshot version. Everything after
	// the snapshot arrives as events; progress marks tell us how complete
	// our knowledge is; a resync signal would tell us to redo step 1.
	done := make(chan struct{})
	cancel, err := store.Watch(accounts, at, unbundle.Callbacks{
		Event: func(ev unbundle.ChangeEvent) {
			fmt.Printf("event at %v: %s -> %s\n", ev.Version, ev.Key, ev.Mut.Value)
		},
		Progress: func(p unbundle.ProgressEvent) {
			fmt.Printf("progress: complete through %v\n", p.Version)
			select {
			case <-done:
			default:
				if p.Version >= at+2 {
					close(done)
				}
			}
		},
		Resync: func(rs unbundle.ResyncEvent) {
			fmt.Printf("resync needed (snapshot >= %v): re-read the store\n", rs.MinVersion)
		},
	})
	if err != nil {
		panic(err)
	}
	defer cancel()

	// Producer keeps writing; the consumer sees it.
	store.Put("account/carol", []byte("balance=10"))
	store.Put("account/alice", []byte("balance=85"))

	select {
	case <-done:
	case <-time.After(5 * time.Second):
	}
	fmt.Println("caught up — the consumer now mirrors the store, with proof of completeness")
}
