// The §4.3 VM-provisioning coordinator: advance entities to desired state by
// watching BOTH the desired configuration and the actual world, instead of
// processing a queue of provisioning tasks.
//
// The event-driven coordinator converges only when someone enqueues a task;
// a VM crash enqueues nothing, so drift persists. The watch coordinator
// treats drift as just another observed change and reconciles it.
//
// Run: go run ./examples/coordinator
package main

import (
	"fmt"
	"time"

	"unbundle/internal/workqueue"
)

func main() {
	fleet := workqueue.NewFleet()

	// --- the event-driven coordinator (pubsub model) ---
	ec, err := workqueue.NewEventCoordinator(fleet)
	if err != nil {
		panic(err)
	}
	defer ec.Close()

	fmt.Println("declaring 5 workloads × 3 VMs each")
	for i := 0; i < 5; i++ {
		fleet.SetDesired(fmt.Sprintf("workload-%d", i), 3)
	}
	ec.Step(100)
	fmt.Printf("event coordinator after processing tasks: %d workloads diverged\n", fleet.Divergence())

	fmt.Println("\nchaos: two VMs crash (machines do not file tickets when they die)")
	fleet.CrashVM("workload-0")
	fleet.CrashVM("workload-3")
	ec.Step(100) // there is nothing in the queue to process
	fmt.Printf("event coordinator after chaos:            %d workloads diverged (it cannot see the crashes)\n",
		fleet.Divergence())

	// --- the watch coordinator (state-based model) ---
	fmt.Println("\nstarting the watch coordinator on the same fleet")
	wc, err := workqueue.NewWatchCoordinator(fleet)
	if err != nil {
		panic(err)
	}
	defer wc.Close()
	waitFor(func() bool {
		wc.Step(20)
		return fleet.Divergence() == 0
	})
	fmt.Printf("watch coordinator:                        %d workloads diverged (crashes observed and repaired)\n",
		fleet.Divergence())

	fmt.Println("\nongoing chaos: scale-up, scale-down, more crashes")
	fleet.SetDesired("workload-1", 5)
	fleet.SetDesired("workload-2", 1)
	fleet.CrashVM("workload-4")
	waitFor(func() bool {
		wc.Step(20)
		return fleet.Divergence() == 0
	})
	fmt.Printf("watch coordinator converged again; total provisioning actions: %d\n", wc.Actions())
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	panic("timed out waiting for convergence")
}
