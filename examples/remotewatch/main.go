// A standalone watch system over the network (§5's research direction):
// a producer store with built-in watch is exposed on a TCP listener; a
// consumer in "another process" dials it and runs the identical
// snapshot-then-watch protocol through the connection.
//
// Run: go run ./examples/remotewatch
package main

import (
	"fmt"
	"time"

	"unbundle"
)

func main() {
	// --- the watch service side ---
	store := unbundle.NewWatchableStore(unbundle.HubConfig{})
	defer store.Close()
	server, err := unbundle.ServeWatch("127.0.0.1:0", store, store)
	if err != nil {
		panic(err)
	}
	defer server.Close()
	fmt.Printf("watch service listening on %s\n", server.Addr())

	store.Put("metric/cpu", []byte("12%"))
	store.Put("metric/mem", []byte("48%"))

	// --- the consumer side (would be another process) ---
	client, err := unbundle.DialWatch(server.Addr())
	if err != nil {
		panic(err)
	}
	defer client.Close()

	// Snapshot over the wire...
	entries, at, err := client.SnapshotRange(unbundle.PrefixRange("metric/"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("remote snapshot at %v:\n", at)
	for _, e := range entries {
		fmt.Printf("  %s = %s\n", e.Key, e.Value)
	}

	// ...then watch over the same connection.
	done := make(chan struct{}, 4)
	cancel, err := client.Watch(unbundle.PrefixRange("metric/"), at, unbundle.Callbacks{
		Event: func(ev unbundle.ChangeEvent) {
			fmt.Printf("remote event %v: %s = %s\n", ev.Version, ev.Key, ev.Mut.Value)
			done <- struct{}{}
		},
		Resync: func(r unbundle.ResyncEvent) {
			fmt.Printf("remote resync: %s\n", r.Reason)
		},
	})
	if err != nil {
		panic(err)
	}
	defer cancel()

	store.Put("metric/cpu", []byte("71%"))
	store.Put("metric/disk", []byte("22%"))

	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			panic("timed out waiting for remote events")
		}
	}
	fmt.Println("the consumer ran the full watch protocol across TCP")
}
