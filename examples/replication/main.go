// CDC replication — the paper's §3.2.1 anomaly, live.
//
// A source store commits: (1) remove a member from a group, then
// (2) grant the group access to a document. A concurrent pubsub applier can
// externalize "member still present AND grant present" — a state the source
// never had. The watch replicator externalizes only progress-complete
// snapshots and can never show it.
//
// Run: go run ./examples/replication
package main

import (
	"fmt"

	"unbundle/internal/mvcc"
	"unbundle/internal/replication"
	"unbundle/internal/workload"
)

func main() {
	fmt.Println("=== concurrent pubsub replication (version checks + tombstones) ===")
	runStrategy(replication.ConcurrentChecked)
	fmt.Println()
	fmt.Println("=== watch replication (range appliers + progress gating) ===")
	runStrategy(replication.Watch)
}

func runStrategy(strategy replication.Strategy) {
	src := mvcc.NewStore()
	repl, err := replication.New(replication.Config{
		Strategy: strategy,
		Window:   64,
		Seed:     7,
	}, src)
	if err != nil {
		panic(err)
	}
	defer repl.Close()
	check := replication.NewChecker(src)

	const rounds = 120
	txns := workload.ACLScript(7, rounds, 6)
	round := 0
	for i, txn := range txns {
		if _, err := src.Commit(func(tx *mvcc.Tx) error {
			for _, op := range txn.Ops {
				if op.Value == nil {
					tx.Delete(op.Key)
				} else {
					tx.Put(op.Key, op.Value)
				}
			}
			return nil
		}); err != nil {
			panic(err)
		}
		// The applier pool runs behind the source, as real pipelines do.
		if i%6 == 0 {
			repl.Step(2)
		}
		// Readers of the target query ACL pairs mid-replication — including
		// pairs whose changes are still working through the backlog.
		for r := 0; r <= round && r < rounds; r++ {
			check.SampleACLPair(repl, r)
		}
		if len(txn.Label) > 5 && txn.Label[:5] == "grant" {
			round++
		}
	}
	repl.Drain()
	div, err := check.EventualDivergence(repl)
	if err != nil {
		panic(err)
	}
	fmt.Printf("strategy:            %v\n", strategy)
	fmt.Printf("pair reads sampled:  %d\n", check.PairSamples)
	fmt.Printf("snapshot violations: %d  (reader saw a state the source never had)\n", check.SnapshotViolations)
	fmt.Printf("eventual divergence: %d keys after drain\n", div)
}
