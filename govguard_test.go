// Governor-overhead guard: memory governance must be near-free when the
// process is under budget. The hot append/fan-out path pays one atomic add
// per charge and a threshold comparison — this test pins that cost: a hub
// charging into a governor with a budget it never approaches must run the
// BenchmarkHubAppendFanout8 workload within 5% of an ungoverned hub.
// Benchmark-grade timing is too noisy for ordinary CI `go test`, so the
// guard only runs when GOV_GUARD is set (see `make govguard`).
package unbundle_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"unbundle"
)

// govGuardRun measures the guard workload against a fresh hub, governed or
// not, and returns ns/op. The governed hub's budget is absurdly large, so
// every charge takes the steady-state fast path and no reliever ever runs —
// exactly the configuration whose cost must be indistinguishable from none.
func govGuardRun(t *testing.T, governed bool) float64 {
	t.Helper()
	runtime.GC()
	reg := unbundle.NewMetricsRegistry()
	var gov *unbundle.Governor
	if governed {
		gov = unbundle.NewGovernor(unbundle.GovernorConfig{Budget: 1 << 40, Metrics: reg})
		defer gov.Close()
	}
	hub := unbundle.NewHub(unbundle.HubConfig{
		Retention:     1 << 16,
		WatcherBuffer: 1 << 20,
		Metrics:       reg,
		Governor:      gov,
	})
	defer hub.Close()
	for w := 0; w < 8; w++ {
		lo := unbundle.Key(fmt.Sprintf("%d", w))
		hi := unbundle.Key(fmt.Sprintf("%d", w+1))
		cancel, err := hub.Watch(unbundle.Range{Low: lo, High: hi}, 0, unbundle.Callbacks{
			Event: func(unbundle.ChangeEvent) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cancel()
	}
	res := testing.Benchmark(guardWorkload(hub))
	return float64(res.T.Nanoseconds()) / float64(res.N)
}

// TestGovernorOverheadGuard compares the governed (under-budget) hub against
// an ungoverned one in the same process, best-of over interleaved rounds
// with alternating order — the same protocol as the tracing and recorder
// guards, sized for noisy shared hardware.
func TestGovernorOverheadGuard(t *testing.T) {
	if os.Getenv("GOV_GUARD") == "" {
		t.Skip("set GOV_GUARD=1 to run the governor-overhead guard (see make govguard)")
	}
	const rounds, maxRounds = 5, 15
	base, governed := -1.0, -1.0
	ratio := 0.0
	for i := 0; i < maxRounds; i++ {
		runs := [2]bool{false, true}
		if i%2 == 1 {
			runs[0], runs[1] = runs[1], runs[0]
		}
		for _, g := range runs {
			v := govGuardRun(t, g)
			if g {
				if governed < 0 || v < governed {
					governed = v
				}
			} else if base < 0 || v < base {
				base = v
			}
		}
		ratio = governed / base
		if i >= rounds-1 && ratio <= 1.05 {
			break
		}
	}
	t.Logf("ungoverned: %.1f ns/op, governed under budget: %.1f ns/op, ratio %.3f", base, governed, ratio)
	if ratio > 1.05 {
		t.Errorf("idle governor costs %.1f%% on the hot append path (budget 5%%)", (ratio-1)*100)
	}
}
